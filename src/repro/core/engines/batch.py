"""The batch engine: vectorised whole-trace replay on NumPy tables.

Every table-update rule in this codebase is *per level-1 entry
sequential*: records that map to different table entries never read
each other's state.  Sorting the trace by table index (a stable argsort
keeps program order within each entry) therefore turns the per-record
recurrences into per-group array operations:

- **last-value reads** (LVP tables, FCM/DFCM level-2 reads): the value
  a record reads is whatever the *previous* record with the same key
  wrote -- one shifted-compare per array (``_prev_in_group``), no loop.
- **FS hash states**: the fold-and-shift recurrence
  ``s' = ((s << k) ^ fold(v)) & mask`` telescopes into a XOR of at most
  ``ceil(index_bits / k)`` shifted fold terms, because older
  contributions shift out of the index -- the very property the paper
  uses to make the hash incrementally computable in hardware makes it
  *windowed*, hence vectorisable (``_fs_states``).
- **two-delta promotion**: ``s1`` changes only where the new stride
  repeats, so a grouped running-maximum of promotion positions forward-
  fills ``s1`` without a loop.
- **confidence-gated stride**: the saturating counter is a genuine
  per-record recurrence, but both halves of it vectorise exactly.  The
  counter itself is a clipped walk ``conf' = clip(conf + x, 0, max)``
  whose per-record transfer functions ``f(s) = min(C, max(B, s + A))``
  are closed under composition, so a grouped parallel prefix scan
  (``_conf_scan``) yields every intermediate counter in ``O(log
  group)`` array steps.  The stride table in turn only changes where
  the gate ``conf < max`` was open, so each record's effective stride
  is the delta at the *latest gate-open predecessor* -- a grouped
  running maximum, like two-delta promotion.  The circular dependency
  (the gate needs the counters, the counters need the correctness
  bits, the correctness bits need the strides) resolves by fixpoint
  iteration from an all-open gate; each pass extends the prefix of
  records whose bits are exact by at least one rank, and in practice
  two or three passes converge (``_stride_fixpoint``).  Small blocks
  -- the serve micro-batch shape -- skip the scan machinery and run
  the classic lane *rounds* loop instead (``_stride_rounds``), which
  also backstops the (never yet observed) non-converged case.

All kernels share one :class:`_KernelContext` per run: hybrid specs
whose components use the same ``((pc >> 2) & (entries - 1), entries)``
index function -- e.g. the paper's stride + DFCM pairing -- compute
the full-trace argsort once and reuse it, instead of re-deriving it
per component.  Kernels return their correctness mask directly (from
the already-sorted arrays, one boolean unsort) and materialise the
predicted-value array only when ``want_predicted`` is set, so counting
runs and non-first hybrid components build no throwaway arrays.

Families without a kernel (last-N, meta hybrids, delayed wrappers,
non-FS hashes) delegate to the scalar engine; the result's ``engine``
field reports which path actually ran.  ``tests/engines/`` holds the
cross-engine equivalence suite keeping every kernel bit-identical to
the scalar reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.engines.scalar import EngineResult, ScalarEngine
from repro.core.types import MASK32

__all__ = ["BatchEngine"]

# Below this many simultaneously active level-1 groups a vector round
# costs more than stepping the survivors in plain Python.  With the
# per-lane tail slicing the scalar tail is O(tail records), so the
# break-even sits where one vector round (~15 us) stops covering its
# survivors' scalar cost (~0.6 us/record).
_STRIDE_LANE_CUTOFF = 24

# Blocks shorter than this run the rounds loop outright: the fixpoint
# scan's fixed cost (a few dozen array allocations) only pays for
# itself on real traces, not serve micro-batches.
_STRIDE_FIXPOINT_MIN_N = 2048

# Fixpoint passes before falling back to the rounds loop.  Convergence
# is guaranteed within the longest group's length and observed at 2-3;
# the cap only bounds the pathological case.
_STRIDE_MAX_ITERS = 32


class _Groups:
    """Stable sort of record indices by table key, plus group geometry.

    ``order`` maps sorted position -> original position; ``rank`` is a
    record's 0-based position within its group; ``start`` the sorted
    position where its group begins; ``is_last`` marks each group's
    final record (whose writes survive into the end-of-trace tables).
    """

    __slots__ = ("order", "keys_sorted", "rank", "start", "is_start",
                 "is_last", "group_starts", "group_sizes")

    def __init__(self, keys: np.ndarray, key_bound: int):
        n = len(keys)
        # A narrow key dtype roughly halves the radix-sort passes.
        if key_bound <= 1 << 16:
            keys = keys.astype(np.uint16)
        elif key_bound <= 1 << 32:
            keys = keys.astype(np.uint32)
        self.order = np.argsort(keys, kind="stable")
        ks = keys[self.order]
        self.keys_sorted = ks
        is_start = np.empty(n, dtype=bool)
        is_start[0] = True
        np.not_equal(ks[1:], ks[:-1], out=is_start[1:])
        self.is_start = is_start
        is_last = np.empty(n, dtype=bool)
        is_last[-1] = True
        is_last[:-1] = is_start[1:]
        self.is_last = is_last
        self.group_starts = np.flatnonzero(is_start)
        self.group_sizes = np.diff(np.append(self.group_starts, n))
        self.start = np.repeat(self.group_starts, self.group_sizes)
        self.rank = np.arange(n, dtype=np.int64) - self.start

    def unsort(self, arr_sorted: np.ndarray) -> np.ndarray:
        out = np.empty_like(arr_sorted)
        out[self.order] = arr_sorted
        return out

    def final_table(self, entries: int, payload_sorted: np.ndarray,
                    base: Optional[np.ndarray] = None) -> np.ndarray:
        """End-of-block table: *base* (default zeros) with each group's
        final payload written to its entry."""
        if base is None:
            table = np.zeros(entries, dtype=np.int64)
        else:
            table = np.asarray(base, dtype=np.int64).copy()
        table[self.keys_sorted[self.is_last]] = payload_sorted[self.is_last]
        return table


class _NoopProbe:
    """Disabled table-usage probe: kernels check one attribute and move
    on.  The real collector (:class:`repro.telemetry.tables`) sets
    ``enabled`` truthy and receives the per-record level-2 index
    stream the kernels already computed."""

    __slots__ = ()

    enabled = False

    def observe_l2(self, spec, slots) -> None:  # pragma: no cover
        pass


_NOOP_PROBE = _NoopProbe()


class _KernelContext:
    """One run's shared arrays: the trace plus memoised decompositions.

    Every kernel keys its level-1 table with the same index function,
    ``(pc >> 2) & (entries - 1)``, so *entries* fully identifies a
    decomposition; hybrid components with equal table sizes -- the
    paper's stride + DFCM configuration among them -- share one argsort
    and one sorted value array.  (A future family with a different
    key expression must widen the cache key accordingly.)

    ``probe`` is the table-usage hook (default: the shared no-op
    singleton, one attribute check per kernel run); the telemetry
    auditor installs a collector to read kernel-internal index
    streams without the kernels materialising anything extra.
    """

    __slots__ = ("pcs", "values", "probe", "_pc_groups")

    def __init__(self, pcs: np.ndarray, values: np.ndarray):
        self.pcs = pcs
        self.values = values
        self.probe = _NOOP_PROBE
        self._pc_groups = {}

    def pc_groups(self, entries: int):
        """``(groups, values_sorted)`` for the pc-indexed key, memoised."""
        cached = self._pc_groups.get(entries)
        if cached is None:
            groups = _Groups((self.pcs >> 2) & (entries - 1), entries)
            cached = (groups, self.values[groups.order])
            self._pc_groups[entries] = cached
        return cached


def _prev_in_group(payload_sorted: np.ndarray, is_start: np.ndarray,
                   initial=0) -> np.ndarray:
    """Per record: the previous same-group record's payload, else *initial*.

    *initial* is a scalar, or an array aligned to sorted positions whose
    values are read at each group's first record (warm start from a
    live table -- see :mod:`repro.core.engines.resume`).
    """
    prev = np.empty_like(payload_sorted)
    prev[1:] = payload_sorted[:-1]
    if isinstance(initial, np.ndarray):
        prev[is_start] = initial[is_start]
    else:
        prev[is_start] = initial
    return prev


def _fold_columns(values: np.ndarray, n: int) -> np.ndarray:
    """Vectorised :func:`repro.core.hashing.fold` over an int64 array."""
    out = np.zeros_like(values)
    mask = (1 << n) - 1
    shift = 0
    while shift < 32:
        out ^= (values >> shift) & mask
        shift += n
    return out


def _fs_states(elements_sorted: np.ndarray, rank: np.ndarray,
               index_bits: int, shift: int,
               initial: Optional[np.ndarray] = None) -> np.ndarray:
    """FS(R-*shift*) hash state after each record, within its group.

    Expanding the recurrence ``s' = ((s << shift) ^ fold(v)) & mask``
    over a group gives ``s_k = XOR_j fold(v_{k-j}) << (j * shift)``
    (masked), and any term with ``j * shift >= index_bits`` is masked
    away entirely -- so the state is a XOR of a fixed, small number of
    shifted fold columns.

    *initial*, when given, is each record's *group-initial* hash state
    (aligned to sorted positions): a warm start from a live table.  Its
    contribution to the state after rank ``r`` is
    ``s0 << ((r + 1) * shift)``, which the mask erases once the group is
    deeper than the hash window -- the same telescoping that makes the
    cold-start form finite.
    """
    folded = _fold_columns(elements_sorted, index_bits)
    state = folded.copy()  # the j = 0 term needs no shift and no masking
    j = 1
    while j * shift < index_bits:
        contribution = np.zeros_like(folded)
        contribution[j:] = folded[:-j] << (j * shift)
        contribution[rank < j] = 0  # do not reach across group boundaries
        state ^= contribution
        j += 1
    if initial is not None:
        # Clamp the shift at index_bits: beyond it the contribution is
        # entirely masked away, and int64 shifts past 63 are undefined.
        amount = np.minimum((rank + 1) * shift, index_bits)
        state ^= initial << amount
    return state & ((1 << index_bits) - 1)


def _store_strides(strides: np.ndarray, stride_bits: int) -> np.ndarray:
    """Vectorised ``DFCMPredictor._store_stride``: truncate + sign-extend."""
    if stride_bits == 32:
        return strides
    stride_mask = (1 << stride_bits) - 1
    sign = 1 << (stride_bits - 1)
    low = strides & stride_mask
    return np.where((low & sign) != 0, low | (MASK32 ^ stride_mask), low)


def _table_init(state, key, groups):
    """Warm-start helpers for one table: per-sorted-record group-initial
    values (or scalar 0) and the base array for the final table."""
    if state is None:
        return 0, None
    table = state[key]
    return table[groups.keys_sorted], table


def _conf_scan(correct_sorted: np.ndarray, rank: np.ndarray,
               inc: int, dec: int, counter_max: int, initial,
               max_size: int) -> np.ndarray:
    """Saturating-counter value after every record, within its group.

    The per-record transfer ``f(s) = clip(s + x, 0, max)`` (with ``x``
    the +inc/-dec outcome delta) is monotone piecewise-linear, and the
    family ``f(s) = min(C, max(B, s + A))`` is closed under
    composition -- composing the older ``f1`` into ``f2`` gives
    ``A = A1 + A2``, ``B = min(max(B2, B1 + A2), C2)``, ``C = min(
    max(B2, C1 + A2), C2)``, with ``A`` clamped to ``+/-(max + 1)``
    (exact on the counter's domain, and what keeps a narrow dtype
    sufficient).  A Hillis-Steele doubling pass over these triples,
    padded with the identity where a window would cross a group
    boundary (``rank < step``), therefore computes every prefix
    composition in ``ceil(log2(longest group))`` array steps; the
    result is each triple applied to its group's *initial* counter.
    """
    n = len(correct_sorted)
    bound = counter_max + 1
    if 2 * bound <= 127:
        dtype = np.int8
    elif 2 * bound <= 32767:
        dtype = np.int16
    else:
        dtype = np.int32
    # The outcome delta, pre-clamped to +/-(max + 1): any larger step
    # already saturates from every reachable counter value.
    x = np.where(correct_sorted,
                 dtype(min(inc, bound)), dtype(-min(dec, bound)))
    A = x
    B = np.zeros(n, dtype=dtype)
    C = np.full(n, counter_max, dtype=dtype)
    lo, hi = dtype(-bound), dtype(bound)
    A1 = np.empty(n, dtype)
    B1 = np.empty(n, dtype)
    C1 = np.empty(n, dtype)
    t = np.empty(n, dtype)
    step = 1
    while step < max_size:
        # The triple `step` positions back, or the identity where that
        # would reach across a group boundary.
        A1[step:] = A[:-step]
        B1[step:] = B[:-step]
        C1[step:] = C[:-step]
        invalid = rank < step  # includes the unshifted [:step] slots
        A1[invalid] = 0
        B1[invalid] = 0
        C1[invalid] = counter_max
        # Compose: the shifted-in (older) triple first, then this one.
        np.add(B1, A, out=t)
        np.clip(t, lo, hi, out=t)
        np.maximum(t, B, out=B1)
        np.minimum(B1, C, out=B1)
        np.add(C1, A, out=t)
        np.clip(t, lo, hi, out=t)
        np.maximum(t, B, out=C1)
        np.minimum(C1, C, out=C1)
        np.add(A1, A, out=A1)
        np.clip(A1, lo, hi, out=A1)
        A, A1 = A1, A
        B, B1 = B1, B
        C, C1 = C1, C
        step <<= 1
    base = initial + A  # int64 when warm (array), dtype when cold scalar
    result = np.maximum(B, base)
    np.minimum(result, C, out=result)
    return result.astype(np.int64)


def _stride_fixpoint(spec, groups, values_sorted, state, want_predicted):
    """Whole-block stride kernel; ``None`` when the fixpoint fails.

    The stride a record predicts with is the delta observed at its
    latest *gate-open* (``conf < max``) same-group predecessor -- the
    replace rule fires whenever the gate is open, correct outcome or
    not -- which a grouped running maximum over gate-open positions
    finds in one pass, exactly like two-delta promotion.  The gate
    needs the counters and the counters need the correctness bits,
    so iterate: start from an all-open gate, derive strides and
    correctness, rebuild the counters with :func:`_conf_scan`, repeat
    until the bits stop changing.  A verified fixpoint *is* the exact
    solution (induction over group rank), and each pass extends the
    exact prefix of every group by at least one record, so the loop
    terminates; the cap merely bounds the worst case, handing the
    block to the rounds loop instead.
    """
    n = len(values_sorted)
    counter_max = (1 << spec.counter_bits) - 1
    inc, dec = spec.counter_inc, spec.counter_dec
    last_init, last_base = _table_init(state, "last", groups)
    s0_init, stride_base = _table_init(state, "stride", groups)
    c0_init, conf_base = _table_init(state, "conf", groups)
    last_before = _prev_in_group(values_sorted, groups.is_start, last_init)
    d = (values_sorted - last_before) & MASK32
    pos = np.arange(n, dtype=np.int64)
    rank = groups.rank
    start = groups.start
    max_size = int(groups.group_sizes.max())
    gate = np.ones(n, dtype=bool)
    correct_sorted = None
    conf_after = None
    stride_before = None
    converged = False
    j_before = np.empty(n, dtype=np.int64)
    for _ in range(_STRIDE_MAX_ITERS):
        # Latest gate-open position strictly before each record, in
        # its group; the stride it wrote is d there (warm s0 if none).
        cand = np.where(gate, pos, np.int64(-1))
        np.maximum.accumulate(cand, out=cand)
        j_before[0] = -1
        j_before[1:] = cand[:-1]
        in_group = j_before >= start
        stride_before = np.where(in_group, d[np.maximum(j_before, 0)],
                                 s0_init)
        fresh = stride_before == d
        if correct_sorted is not None and np.array_equal(fresh,
                                                         correct_sorted):
            converged = True
            break
        correct_sorted = fresh
        conf_after = _conf_scan(correct_sorted, rank, inc, dec, counter_max,
                                c0_init, max_size)
        gate = _prev_in_group(conf_after, groups.is_start,
                              c0_init) < counter_max
    if not converged:
        return None
    predicted = (groups.unsort((last_before + stride_before) & MASK32)
                 if want_predicted else None)
    correct = groups.unsort(correct_sorted)
    stride_after = np.where(gate, d, stride_before)
    return predicted, correct, {
        "last": groups.final_table(spec.entries, values_sorted, last_base),
        "stride": groups.final_table(spec.entries, stride_after, stride_base),
        "conf": groups.final_table(spec.entries, conf_after, conf_base),
    }


def _stride_rounds(spec, groups, values_sorted, state, want_predicted):
    """Stride kernel as lane rounds + scalar tail: the small-block path."""
    n = len(values_sorted)
    # One lane per level-1 group, longest first, so the active lanes of
    # every round form a prefix of the arrays.
    lane_order = np.argsort(-groups.group_sizes, kind="stable")
    lane_start = groups.group_starts[lane_order]
    lane_size = groups.group_sizes[lane_order]
    lane_key = groups.keys_sorted[lane_start]
    lanes = len(lane_key)
    counter_max = (1 << spec.counter_bits) - 1
    inc, dec = spec.counter_inc, spec.counter_dec
    if state is None:
        last = np.zeros(lanes, dtype=np.int64)
        stride = np.zeros(lanes, dtype=np.int64)
        conf = np.zeros(lanes, dtype=np.int64)
    else:
        # Fancy indexing copies, so the lanes are free to mutate.
        last = state["last"][lane_key]
        stride = state["stride"][lane_key]
        conf = state["conf"][lane_key]
    predictions_sorted = np.zeros(n, dtype=np.int64)
    scratch = np.empty(lanes, dtype=np.int64)
    round_no = 0
    active = lanes
    while True:
        while active > 0 and lane_size[active - 1] <= round_no:
            active -= 1
        if active < _STRIDE_LANE_CUTOFF:
            break
        at = lane_start[:active] + round_no
        observed = values_sorted[at]
        prediction = np.bitwise_and(last[:active] + stride[:active], MASK32,
                                    out=scratch[:active])
        predictions_sorted[at] = prediction
        correct = prediction == observed
        # The replace gate reads the counter *before* this outcome --
        # same ordering as StridePredictor.update.
        replace = conf[:active] < counter_max
        conf[:active] += np.where(correct, inc, -dec)
        np.clip(conf[:active], 0, counter_max, out=conf[:active])
        np.copyto(stride[:active],
                  (observed - last[:active]) & MASK32, where=replace)
        last[:active] = observed
        round_no += 1
    if active > 0:
        # A handful of very long groups remain: finish them record by
        # record on plain ints (cheaper than near-empty vector rounds),
        # materialising only each lane's own unprocessed slice.
        for lane in range(active):
            size = int(lane_size[lane])
            base = int(lane_start[lane])
            lane_last = int(last[lane])
            lane_stride = int(stride[lane])
            lane_conf = int(conf[lane])
            tail = values_sorted[base + round_no:base + size].tolist()
            tail_predictions = []
            for observed in tail:
                prediction = (lane_last + lane_stride) & MASK32
                tail_predictions.append(prediction)
                replace = lane_conf < counter_max
                if prediction == observed:
                    lane_conf = min(lane_conf + inc, counter_max)
                else:
                    lane_conf = max(lane_conf - dec, 0)
                if replace:
                    lane_stride = (observed - lane_last) & MASK32
                lane_last = observed
            predictions_sorted[base + round_no:base + size] = tail_predictions
            last[lane] = lane_last
            stride[lane] = lane_stride
            conf[lane] = lane_conf
    predicted = (groups.unsort(predictions_sorted)
                 if want_predicted else None)
    correct = groups.unsort(predictions_sorted == values_sorted)

    def lane_table(key: str, lane_values: np.ndarray) -> np.ndarray:
        if state is None:
            table = np.zeros(spec.entries, dtype=np.int64)
        else:
            table = state[key].copy()
        table[lane_key] = lane_values
        return table

    return predicted, correct, {
        "last": lane_table("last", last),
        "stride": lane_table("stride", stride),
        "conf": lane_table("conf", conf),
    }


def _run_stride(spec, ctx, state=None, want_predicted=True):
    groups, values_sorted = ctx.pc_groups(spec.entries)
    if len(values_sorted) >= _STRIDE_FIXPOINT_MIN_N:
        result = _stride_fixpoint(spec, groups, values_sorted, state,
                                  want_predicted)
        if result is not None:
            return result
    return _stride_rounds(spec, groups, values_sorted, state, want_predicted)


def _run_last_value(spec, ctx, state=None, want_predicted=True):
    groups, values_sorted = ctx.pc_groups(spec.entries)
    init, base = _table_init(state, "values", groups)
    predicted_sorted = _prev_in_group(values_sorted, groups.is_start, init)
    predicted = groups.unsort(predicted_sorted) if want_predicted else None
    correct = groups.unsort(predicted_sorted == values_sorted)
    return predicted, correct, {
        "values": groups.final_table(spec.entries, values_sorted, base),
    }


def _run_fcm(spec, ctx, state=None, want_predicted=True):
    hash_spec = spec.hash  # kind 'fs' guaranteed by supports()
    groups, values_sorted = ctx.pc_groups(spec.l1_entries)
    s0, l1_base = _table_init(state, "l1", groups)
    s0_arr = s0 if isinstance(s0, np.ndarray) else None
    state_after = _fs_states(values_sorted, groups.rank,
                             hash_spec.index_bits, hash_spec.shift, s0_arr)
    # The prediction reads -- and the update then writes -- the level-2
    # slot of the state *before* the record; for the FS hash the state
    # is the index.  Since read and write hit the same slot, the level-2
    # read is again a prev-in-group, this time grouped by slot.
    slots = groups.unsort(_prev_in_group(state_after, groups.is_start, s0))
    if ctx.probe.enabled:
        ctx.probe.observe_l2(spec, slots)
    slot_groups = _Groups(slots, spec.l2_entries)
    l2_init, l2_base = _table_init(state, "l2", slot_groups)
    slot_values_sorted = ctx.values[slot_groups.order]
    predicted_sorted = _prev_in_group(slot_values_sorted,
                                      slot_groups.is_start, l2_init)
    predicted = (slot_groups.unsort(predicted_sorted)
                 if want_predicted else None)
    correct = slot_groups.unsort(predicted_sorted == slot_values_sorted)
    return predicted, correct, {
        "l1": groups.final_table(spec.l1_entries, state_after, l1_base),
        "l2": slot_groups.final_table(spec.l2_entries, slot_values_sorted,
                                      l2_base),
    }


def _run_dfcm(spec, ctx, state=None, want_predicted=True):
    hash_spec = spec.hash
    groups, values_sorted = ctx.pc_groups(spec.l1_entries)
    last_init, last_base = _table_init(state, "last", groups)
    h0, hist_base = _table_init(state, "hist", groups)
    h0_arr = h0 if isinstance(h0, np.ndarray) else None
    last_before = _prev_in_group(values_sorted, groups.is_start, last_init)
    strides = (values_sorted - last_before) & MASK32
    state_after = _fs_states(strides, groups.rank,
                             hash_spec.index_bits, hash_spec.shift, h0_arr)
    stored = _store_strides(strides, spec.stride_bits)
    slots = groups.unsort(_prev_in_group(state_after, groups.is_start, h0))
    if ctx.probe.enabled:
        ctx.probe.observe_l2(spec, slots)
    slot_groups = _Groups(slots, spec.l2_entries)
    l2_init, l2_base = _table_init(state, "l2", slot_groups)
    stored_by_slot = groups.unsort(stored)[slot_groups.order]
    l2_read = slot_groups.unsort(
        _prev_in_group(stored_by_slot, slot_groups.is_start, l2_init))
    # predicted = last + l2_read (mod 2^32), so the prediction is
    # correct exactly where the level-2 read equals the actual stride.
    correct = l2_read == groups.unsort(strides)
    predicted = ((groups.unsort(last_before) + l2_read) & MASK32
                 if want_predicted else None)
    return predicted, correct, {
        "last": groups.final_table(spec.l1_entries, values_sorted, last_base),
        "hist": groups.final_table(spec.l1_entries, state_after, hist_base),
        "l2": slot_groups.final_table(spec.l2_entries, stored_by_slot,
                                      l2_base),
    }


def _run_stride2d(spec, ctx, state=None, want_predicted=True):
    groups, values_sorted = ctx.pc_groups(spec.entries)
    last_init, last_base = _table_init(state, "last", groups)
    s1_init, s1_base = _table_init(state, "s1", groups)
    s2_init, s2_base = _table_init(state, "s2", groups)
    last_before = _prev_in_group(values_sorted, groups.is_start, last_init)
    new_stride = (values_sorted - last_before) & MASK32
    s2_before = _prev_in_group(new_stride, groups.is_start, s2_init)
    promote = new_stride == s2_before  # same stride twice in a row
    # s1 before record k is the stride at the latest promotion strictly
    # before k in the same group (the warm/initial s1 if none): a
    # running maximum over promotion positions, validated against the
    # group start.
    pos = np.arange(len(values_sorted), dtype=np.int64)
    promo_pos = np.maximum.accumulate(np.where(promote, pos, -1))
    promo_before = np.empty_like(promo_pos)
    promo_before[0] = -1
    promo_before[1:] = promo_pos[:-1]
    in_group = promo_before >= groups.start
    s1_before = np.where(in_group,
                         new_stride[np.maximum(promo_before, 0)], s1_init)
    # predicted = last + s1 (mod 2^32): correct iff s1 equals the delta.
    correct = groups.unsort(s1_before == new_stride)
    predicted = (groups.unsort((last_before + s1_before) & MASK32)
                 if want_predicted else None)
    s1_after = np.where(promote, new_stride, s1_before)
    return predicted, correct, {
        "last": groups.final_table(spec.entries, values_sorted, last_base),
        "s1": groups.final_table(spec.entries, s1_after, s1_base),
        "s2": groups.final_table(spec.entries, new_stride, s2_base),
    }


def _run_oracle_hybrid(spec, ctx, state=None, want_predicted=True):
    correct_any = None
    tables = {}
    predicted_first = None
    for i, component in enumerate(spec.components):
        prefix = f"c{i}."
        comp_in = (None if state is None else
                   {k[len(prefix):]: v for k, v in state.items()
                    if k.startswith(prefix)})
        # Only the first component's predictions are ever surfaced; the
        # others contribute nothing but their correctness mask.
        predicted, correct, comp_state = _KERNELS[component.family](
            component, ctx, comp_in,
            want_predicted=want_predicted and i == 0)
        if correct_any is None:
            correct_any = correct
        else:
            correct_any |= correct
        for key, table in comp_state.items():
            tables[prefix + key] = table
        if i == 0:
            predicted_first = predicted
    return predicted_first, correct_any, tables


_KERNELS = {
    "last_value": _run_last_value,
    "stride": _run_stride,
    "stride2d": _run_stride2d,
    "fcm": _run_fcm,
    "dfcm": _run_dfcm,
    "oracle_hybrid": _run_oracle_hybrid,
}


class BatchEngine:
    """Vectorised engine over NumPy tables; scalar fallback otherwise."""

    name = "batch"

    @classmethod
    def supports(cls, spec) -> bool:
        """True when every table in *spec* has a vectorised kernel."""
        family = spec.family
        if family in ("fcm", "dfcm"):
            return spec.hash.kind == "fs"
        if family == "oracle_hybrid":
            return all(cls.supports(c) for c in spec.components)
        return family in ("last_value", "stride", "stride2d")

    def run(self, spec, trace, want_state: bool = False) -> EngineResult:
        if not self.supports(spec):
            return ScalarEngine().run(spec, trace, want_state)
        total = len(trace)
        if total == 0:
            state = spec.extract_state(spec.build()) if want_state else None
            return EngineResult(0, 0, self.name, state)
        ctx = _KernelContext(trace.pcs.astype(np.int64),
                             trace.values.astype(np.int64))
        # Counting needs no predicted-value array at all.
        _, correct, state = _KERNELS[spec.family](spec, ctx, None,
                                                  want_predicted=False)
        self._maybe_probe_tables(spec, trace)
        return EngineResult(int(correct.sum()), total, self.name,
                            state if want_state else None)

    @staticmethod
    def _maybe_probe_tables(spec, trace) -> None:
        """Sampled table-usage probe for an instrumented counting run.

        With no active telemetry run this is one global lookup; with
        one, the auditor replays a bounded prefix (probe_sample_limit
        records) through these same kernels with the slot collector
        installed and emits the ``table_usage`` event -- identical, by
        the parity suite, to the scalar path's sample for this
        (spec, trace) pair, which the shared once() key then skips.
        """
        from repro.telemetry import run as _run
        run = _run.active_run()
        if run is None:
            return
        from repro.telemetry.probes import probe_sample_limit
        from repro.telemetry.tables import (AUDITED_FAMILIES,
                                            TableUsageAuditor,
                                            emit_table_usage)
        limit = probe_sample_limit()
        if limit == 0 or spec.family not in AUDITED_FAMILIES:
            return
        if not run.once(("table_usage", spec.name, trace.name)):
            return
        pcs = trace.pcs[:limit]
        values = trace.values[:limit]
        if not len(pcs):
            return
        auditor = TableUsageAuditor(spec, engine="batch")
        auditor.update(pcs, values)
        emit_table_usage(run, auditor.report(), trace.name)
