"""The scalar engine: the reference per-record simulation loop.

This is exactly the semantics the predictor classes have always had --
the engine builds the stateful predictor from its spec and drives the
measurement hot loop over ``(pc, value)`` records.  ``count_correct``
is that loop, shared with :mod:`repro.harness.simulate` for
caller-supplied predictor instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import ValuePredictor

__all__ = ["EngineResult", "ScalarEngine", "count_correct"]


@dataclass
class EngineResult:
    """Outcome of replaying one spec over one trace."""

    correct: int
    total: int
    engine: str  # 'scalar' or 'batch': which kernel actually ran
    state: Optional[Dict[str, np.ndarray]] = None

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def count_correct(predictor: ValuePredictor,
                  records: List[Tuple[int, int]]) -> int:
    """The measurement hot loop: correct predictions over *records*."""
    correct = 0
    step = type(predictor).step
    if step is ValuePredictor.step:
        # Plain predictor: inline predict-then-update.
        predict = predictor.predict
        update = predictor.update
        for pc, value in records:
            if predict(pc) == value:
                correct += 1
            update(pc, value)
    else:
        bound_step = predictor.step
        for pc, value in records:
            if bound_step(pc, value):
                correct += 1
    return correct


class ScalarEngine:
    """Reference engine: spec -> predictor object -> per-record loop."""

    name = "scalar"

    def run(self, spec, trace, want_state: bool = False) -> EngineResult:
        predictor = spec.build()
        correct = count_correct(predictor, trace.records())
        state = spec.extract_state(predictor) if want_state else None
        return EngineResult(correct, len(trace), self.name, state)
