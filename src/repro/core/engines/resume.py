"""Resumable batch stepping: the batch kernels, warm-started.

The whole-trace kernels in :mod:`repro.core.engines.batch` assume
cold (all-zero) tables.  An online service cannot: a session's tables
are live between requests.  This module runs the *same* kernels from an
explicit table-state snapshot -- the canonical
:meth:`~repro.core.spec.PredictorSpec.extract_state` dict of int64
arrays -- and returns the per-record predictions together with the
state after the block:

    state = initial_state(spec)
    predicted, state = step_block(spec, state, pcs, values)

``step_block(spec, initial_state(spec), pcs, values)`` over one whole
trace is bit-identical to the cold-start batch replay (and therefore to
the scalar reference loop); chunking the trace arbitrarily and
threading the state through produces the same predictions and the same
final tables.  ``tests/engines/test_resume.py`` enforces both.

Warm starts ride on two observations:

- every *last-value read* (LVP tables, DFCM last values, FCM/DFCM
  level-2 reads) becomes a prev-in-group with the group's first record
  reading the stored table entry instead of zero;
- the FS hash state's initial contribution ``s0 << ((rank+1) * shift)``
  shifts out of the index after the same fixed window that makes the
  cold-start recurrence telescope, so warm hash states cost one extra
  vector term.

Supported families: last_value, stride, stride2d, fcm, dfcm (the
latter two with the paper's FS hash, same restriction as
:meth:`BatchEngine.supports`).  Hybrids, meta predictors and delayed
wrappers keep their stateful scalar objects in the serving layer.

The kernels never write into the input state dict (warm tables are
fancy-index *copies*; final tables are rebuilt fresh), so *state* may
be a read-only view -- in particular the zero-copy mmap views handed
out by :func:`repro.core.state.open_arena`.  That is the contract the
durable-state layer stands on: a spilled session is re-seated straight
onto its arena's mapped arrays, no payload copy, and the next
``step_block`` is bit-identical.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.engines.batch import _KERNELS, _KernelContext

__all__ = ["RESUMABLE_FAMILIES", "NON_RESUMABLE_FAMILIES",
           "supports_resume", "initial_state", "step_block"]

#: Families whose batch kernel accepts a warm-start state.
RESUMABLE_FAMILIES = ("last_value", "stride", "stride2d", "fcm", "dfcm")

#: Families that deliberately stay on stateful scalar objects in the
#: serving layer (composite or measurement-only predictors with no
#: canonical table snapshot).  Every registered spec family must appear
#: in exactly one of these two tuples -- ``tests/engines/test_resume.py``
#: asserts the partition against the full spec registry, so a newly
#: added family cannot silently fall into the slow non-resumable path.
NON_RESUMABLE_FAMILIES = ("last_n", "oracle_hybrid", "meta_hybrid",
                          "delayed")

State = Dict[str, np.ndarray]


def supports_resume(spec) -> bool:
    """True when *spec* can be stepped through the warm-start kernels."""
    family = spec.family
    if family not in RESUMABLE_FAMILIES:
        return False
    if family in ("fcm", "dfcm"):
        return spec.hash.kind == "fs"
    return True


def initial_state(spec) -> State:
    """The cold (all-zero) table snapshot for *spec*.

    Derived from a freshly built predictor through the canonical
    :meth:`~repro.core.spec.PredictorSpec.extract_state`, so the state
    layout is the one the cross-engine equivalence suite already pins.
    """
    if not supports_resume(spec):
        raise ValueError(f"{spec.name}: family {spec.family!r} is not "
                         "resumable")
    return spec.extract_state(spec.build())


def step_block(spec, state: State, pcs: np.ndarray,
               values: np.ndarray) -> Tuple[np.ndarray, State]:
    """Predict-then-update every ``(pc, value)`` record, warm-started.

    *state* is not mutated; the returned pair is ``(predicted, state')``
    where ``predicted[i]`` is the prediction issued for record ``i``
    with all earlier records already trained -- exactly the scalar
    ``predict(pc); update(pc, value)`` loop.
    """
    if not supports_resume(spec):
        raise ValueError(f"{spec.name}: family {spec.family!r} is not "
                         "resumable")
    pcs = np.asarray(pcs, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if pcs.shape != values.shape:
        raise ValueError(f"pcs and values lengths differ: "
                         f"{pcs.shape} vs {values.shape}")
    if len(pcs) == 0:
        return np.zeros(0, dtype=np.int64), state
    ctx = _KernelContext(pcs, values)
    predicted, _, new_state = _KERNELS[spec.family](spec, ctx, state)
    return predicted, new_state
