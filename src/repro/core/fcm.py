"""The finite context method (FCM) predictor, paper section 2.3.

A two-level predictor (Sazeides & Smith).  The level-1 table, indexed by
the PC, stores the *hashed* history of the last ``order`` values the
instruction produced.  The level-2 table, indexed by that hash, stores
the value most likely to follow the history.

Updating (paper Figure 2(b)): the correct value is written into the
level-2 entry *where the prediction was read* -- i.e. at the old
history's index -- and the level-1 hash is advanced incrementally with
the new value.

With the default FS(R-5) hash, the order follows the paper's coupling
``order = ceil(log2(l2_entries) / 5)``.
"""

from __future__ import annotations

import math

from repro.core.base import ValuePredictor
from repro.core.hashing import FoldShiftHash, HistoryHash
from repro.core.spec import FCMSpec, HashSpec
from repro.core.types import MASK32, WORD_BITS, require_power_of_two

__all__ = ["FCMPredictor"]


class FCMPredictor(ValuePredictor):
    """Order-k finite context method predictor.

    Parameters
    ----------
    l1_entries:
        Level-1 (per-instruction history) table size, power of two.
    l2_entries:
        Level-2 (per-context value) table size, power of two.
    hash_fn:
        History hash; defaults to the paper's FS(R-5) with the coupled
        order.  Any :class:`~repro.core.hashing.HistoryHash` whose
        ``index_bits`` equals ``log2(l2_entries)`` is accepted.
    """

    def __init__(self, l1_entries: int, l2_entries: int,
                 hash_fn: HistoryHash | None = None):
        require_power_of_two(l1_entries, "FCM level-1 size")
        require_power_of_two(l2_entries, "FCM level-2 size")
        index_bits = l2_entries.bit_length() - 1
        if hash_fn is None:
            hash_fn = FoldShiftHash(index_bits)
        elif hash_fn.index_bits != index_bits:
            raise ValueError(
                f"hash produces {hash_fn.index_bits}-bit indices but the "
                f"level-2 table needs {index_bits}-bit indices"
            )
        self.l1_entries = l1_entries
        self.l2_entries = l2_entries
        self.hash_fn = hash_fn
        self.order = hash_fn.order
        self._l1_mask = l1_entries - 1
        self._l1 = [hash_fn.initial_state] * l1_entries
        self._l2 = [0] * l2_entries
        # Declarative twin; None when the hash is a custom subclass the
        # spec layer cannot rebuild in another process.
        hash_spec = HashSpec.from_hash(hash_fn)
        self.spec = (FCMSpec(l1_entries, l2_entries, hash_spec)
                     if hash_spec is not None else None)
        self.name = f"fcm_l1={l1_entries}_l2={l2_entries}"

    def predict(self, pc: int) -> int:
        state = self._l1[(pc >> 2) & self._l1_mask]
        return self._l2[self.hash_fn.index(state)]

    def update(self, pc: int, value: int) -> None:
        value &= MASK32
        l1_index = (pc >> 2) & self._l1_mask
        state = self._l1[l1_index]
        # Train the level-2 entry the prediction was read from, then
        # advance the history.
        self._l2[self.hash_fn.index(state)] = value
        self._l1[l1_index] = self.hash_fn.step(state, value)

    def storage_bits(self) -> int:
        """L1: one hashed history (index_bits) per entry; L2: 32-bit values.

        Only the hashed history is stored in level 1 (the hash is
        incremental), exactly as the paper argues in section 2.3.
        """
        if self.spec is not None:
            return self.spec.storage_bits()
        return (self.l1_entries * self.hash_fn.index_bits
                + self.l2_entries * WORD_BITS)

    # -- introspection used by the occupancy/aliasing instrumentation --

    def l2_index(self, pc: int) -> int:
        """Level-2 index the next prediction for *pc* would use."""
        return self.hash_fn.index(self._l1[(pc >> 2) & self._l1_mask])

    def l1_index(self, pc: int) -> int:
        """Level-1 entry index for *pc*."""
        return (pc >> 2) & self._l1_mask
