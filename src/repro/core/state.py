"""Durable predictor state: mmap-able table arenas.

A predictor's learned state is exactly what the DFCM design exists to
pack efficiently -- and exactly what dies with the process while
tables live as anonymous in-memory arrays.  This module gives every
resumable family's table state a durable on-disk form: the **arena**,
one contiguous buffer per session holding all of its table arrays,
fronted by a typed header that describes per-level shapes and dtypes.

Arena file layout (all integers big-endian)::

    0   8s   magic  b"RPROARNA"
    8   u32  arena format version  (file layout; ARENA_FORMAT_VERSION)
    12  u32  state version         (table-layout generation; STATE_VERSION)
    16  u32  header JSON length
    20  u32  CRC-32 over header JSON + payload
    24  u64  payload length
    32  ...  header JSON (utf-8)
    --- zero padding to a 64-byte boundary ---
    ...      payload: the table arrays back to back, each aligned
             to 64 bytes at the absolute offsets the header declares

The header JSON carries the spec config
(:meth:`~repro.core.spec.PredictorSpec.to_config`), a digest of it,
the array directory (key, dtype, shape, offset, nbytes) and arbitrary
JSON metadata (session counters and the like).  Because each array is
stored contiguous, little-endian and 64-byte aligned, :func:`open_arena`
maps the file read-only and hands back zero-copy NumPy views -- the
warm-start kernels in :mod:`repro.core.engines.resume` never mutate
their input state, so a session can be re-seated directly on the
mapped arrays without a single payload copy.

Robustness reuses the trace cache's discipline (the cache now shares
these helpers):

- **writes are atomic** -- :func:`atomic_write_bytes` writes a
  ``*.tmp`` sibling and ``os.replace``\\ s it into place;
- **reads are verified** -- magic, format version, truncation and the
  CRC are checked before any view is built, and defective files are
  :func:`quarantine_file`'d (renamed ``*.corrupt``) by the store;
- **state is version-gated** -- an arena whose ``state_version``
  differs from this process's :data:`STATE_VERSION` raises
  :class:`StateVersionError` with a message naming both sides, so a
  rolling deploy refuses a mismatched table layout instead of
  silently misreading it.

:class:`ArenaStore` is the directory-of-arenas layer the server's LRU
session evictor and the ``repro state ls/verify/compact`` CLI sit on.
"""

from __future__ import annotations

import hashlib
import json
import os
import mmap
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ARENA_MAGIC", "ARENA_FORMAT_VERSION", "STATE_VERSION", "ARENA_SUFFIX",
    "ArenaError", "StateVersionError",
    "atomic_write_bytes", "quarantine_file",
    "arena_bytes", "write_arena", "open_arena", "verify_arena",
    "Arena", "ArenaInfo", "ArenaStore", "spec_digest",
]

ARENA_MAGIC = b"RPROARNA"

#: File-layout generation: prefix struct, alignment, header fields.
ARENA_FORMAT_VERSION = 1

#: Table-state layout generation.  Bump whenever the canonical
#: :meth:`~repro.core.spec.PredictorSpec.extract_state` layout of any
#: resumable family changes meaning (new key, reinterpreted entries,
#: different dtype): restore refuses any other version, which is what
#: keeps a rolling deploy from serving predictions off misread tables.
STATE_VERSION = 1

ARENA_SUFFIX = ".arena"

_PREFIX = struct.Struct("!8sIIIIQ")
_ALIGN = 64


class ArenaError(Exception):
    """An arena file is unreadable: corrupt, truncated, or stale."""


class StateVersionError(ArenaError):
    """The arena's state layout generation does not match this process.

    Deliberately a *distinct* error: the bytes are sound, the layout
    is just from a different deploy, so the right reaction is an
    explicit refusal (and a clear client error), never quarantine.
    """


# ---------------------------------------------------------------- shared
# File-discipline helpers shared with the trace cache.

def atomic_write_bytes(path, payload) -> int:
    """Write *payload* to *path* atomically; returns the bytes written.

    The payload goes to a ``*.tmp`` sibling first and is
    ``os.replace``'d into place, so an interrupted write leaves at
    worst a stray temp file, never a truncated target.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    view = memoryview(payload)
    with open(tmp, "wb") as handle:
        handle.write(view)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(view)


def quarantine_file(path) -> Path:
    """Move an unreadable file aside as ``<name>.corrupt``.

    Keeps the bytes for post-mortem instead of deleting; a later
    quarantine of the same name overwrites the previous one.  Returns
    the quarantine path.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    os.replace(path, target)
    return target


def spec_digest(config: dict) -> str:
    """Stable short digest of a spec config dict (identity gate)."""
    blob = json.dumps(config, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ------------------------------------------------------------- encoding

def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def arena_bytes(spec_config: dict, state: Dict[str, np.ndarray],
                meta: Optional[dict] = None,
                state_version: int = STATE_VERSION) -> bytearray:
    """Serialise one table-state snapshot into arena file bytes.

    *state* maps table keys to arrays (any NumPy dtype; stored
    little-endian, contiguous).  Keys starting with ``__`` are
    auxiliary (session bookkeeping) rather than table state; the
    layout gate in :func:`Arena.table_state` ignores them.
    """
    directory: List[dict] = []
    chunks: List[bytes] = []
    offset = 0  # filled in once the header size is known
    payload_len = 0
    for key in sorted(state):
        arr = np.ascontiguousarray(state[key])
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        data = arr.tobytes()
        payload_len = _align(payload_len)
        directory.append({
            "key": key,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": payload_len,  # relative; rebased below
            "nbytes": len(data),
        })
        chunks.append(data)
        payload_len += len(data)
    header = {
        "schema": 1,
        "state_version": state_version,
        "spec": spec_config,
        "spec_digest": spec_digest(spec_config),
        "arrays": directory,
        "meta": meta or {},
    }
    # The directory stores absolute file offsets, but those depend on
    # the header length -- encode twice: relative first, then rebased.
    blob = json.dumps(header, sort_keys=True).encode()
    payload_start = _align(_PREFIX.size + len(blob))
    for entry in directory:
        entry["offset"] += payload_start
    blob = json.dumps(header, sort_keys=True).encode()
    # Rebasing never changes the header length (offsets grow by the
    # same payload_start for every array), but guard it anyway.
    payload_start2 = _align(_PREFIX.size + len(blob))
    if payload_start2 != payload_start:  # pragma: no cover - defensive
        for entry in directory:
            entry["offset"] += payload_start2 - payload_start
        payload_start = payload_start2
        blob = json.dumps(header, sort_keys=True).encode()
    out = bytearray(payload_start + payload_len)
    out[_PREFIX.size:_PREFIX.size + len(blob)] = blob
    for entry, data in zip(directory, chunks):
        out[entry["offset"]:entry["offset"] + entry["nbytes"]] = data
    crc = zlib.crc32(memoryview(out)[_PREFIX.size:]) & 0xFFFFFFFF
    _PREFIX.pack_into(out, 0, ARENA_MAGIC, ARENA_FORMAT_VERSION,
                      state_version, len(blob), crc, payload_len)
    return out


def write_arena(path, spec_config: dict, state: Dict[str, np.ndarray],
                meta: Optional[dict] = None,
                state_version: int = STATE_VERSION) -> int:
    """Atomically write a table-state arena; returns bytes written."""
    return atomic_write_bytes(
        path, arena_bytes(spec_config, state, meta, state_version))


# ------------------------------------------------------------- decoding

@dataclass(frozen=True)
class ArenaInfo:
    """Cheap header-only summary of an arena file (no payload parse)."""

    path: Path
    state_version: int
    spec_name: Optional[str]
    spec_digest: str
    meta: dict
    arrays: int
    nbytes: int


class Arena:
    """One opened arena: header fields + zero-copy array views.

    The arrays returned by :meth:`state` alias the read-only memory
    map; NumPy keeps the map alive through each array's ``.base``, so
    views stay valid even after the :class:`Arena` object itself is
    garbage collected.  The warm-start kernels never write into their
    input state, so these views feed
    :func:`repro.core.engines.step_block` directly.
    """

    def __init__(self, path: Path, header: dict, buffer,
                 state_version: int):
        self.path = Path(path)
        self.header = header
        self.state_version = state_version
        self.spec_config = header["spec"]
        self.meta = header.get("meta", {})
        self._buffer = buffer
        self._arrays: Dict[str, np.ndarray] = {}
        for entry in header["arrays"]:
            arr = np.frombuffer(
                buffer, dtype=np.dtype(entry["dtype"]),
                count=int(np.prod(entry["shape"], dtype=np.int64)),
                offset=entry["offset"]).reshape(entry["shape"])
            self._arrays[entry["key"]] = arr

    def state(self) -> Dict[str, np.ndarray]:
        """Every stored array (tables and ``__`` auxiliaries)."""
        return dict(self._arrays)

    def table_state(self) -> Dict[str, np.ndarray]:
        """Only the table arrays (auxiliary ``__`` keys stripped)."""
        return {k: v for k, v in self._arrays.items()
                if not k.startswith("__")}

    def aux(self, key: str) -> Optional[np.ndarray]:
        return self._arrays.get("__" + key)

    @property
    def nbytes(self) -> int:
        return len(self._buffer)


def _read_prefix(raw, path) -> Tuple[int, int, int, int]:
    if len(raw) < _PREFIX.size:
        raise ArenaError(f"{path}: truncated arena header "
                         f"({len(raw)} bytes)")
    magic, fmt, state_version, header_len, crc, payload_len = \
        _PREFIX.unpack_from(raw)
    if magic != ARENA_MAGIC:
        raise ArenaError(f"{path}: not an arena file (bad magic)")
    if fmt != ARENA_FORMAT_VERSION:
        raise ArenaError(f"{path}: arena format v{fmt}, this build "
                         f"reads v{ARENA_FORMAT_VERSION}")
    return state_version, header_len, crc, payload_len


def _parse_arena(raw, path, check_state_version: bool = True) -> Arena:
    state_version, header_len, crc, payload_len = _read_prefix(raw, path)
    payload_start = _align(_PREFIX.size + header_len)
    if len(raw) < payload_start + payload_len:
        raise ArenaError(
            f"{path}: truncated arena ({len(raw)} bytes, header "
            f"declares {payload_start + payload_len})")
    actual = zlib.crc32(memoryview(raw)[_PREFIX.size:
                                        payload_start + payload_len])
    if actual & 0xFFFFFFFF != crc:
        raise ArenaError(f"{path}: CRC mismatch "
                         f"(stored {crc:#010x}, computed {actual:#010x})")
    try:
        header = json.loads(
            bytes(raw[_PREFIX.size:_PREFIX.size + header_len]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArenaError(f"{path}: unreadable arena header "
                         f"({exc})") from exc
    if header.get("state_version") != state_version:
        raise ArenaError(f"{path}: header/prefix state version disagree "
                         f"({header.get('state_version')} vs "
                         f"{state_version})")
    if check_state_version and state_version != STATE_VERSION:
        raise StateVersionError(
            f"{path}: arena holds state layout v{state_version} but this "
            f"server speaks v{STATE_VERSION}; refusing restore (mixed "
            f"rolling deploy? drain the old writer or recreate the "
            f"session)")
    return Arena(path, header, raw, state_version)


def open_arena(path, check_state_version: bool = True) -> Arena:
    """Open an arena read-only with zero payload copies.

    The file is mapped (``mmap.ACCESS_READ``) and fully verified --
    magic, format version, truncation, CRC -- before any array view is
    built.  Raises :class:`ArenaError` on any defect and
    :class:`StateVersionError` on a state-layout generation mismatch
    (suppress with ``check_state_version=False`` for inspection tools).
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size == 0:
                raise ArenaError(f"{path}: empty arena file")
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except OSError as exc:
        raise ArenaError(f"{path}: cannot open arena "
                         f"({exc})") from exc
    return _parse_arena(buffer, path, check_state_version)


def verify_arena(path) -> Optional[str]:
    """Integrity-check one arena; ``None`` when sound, else the defect.

    A wrong state version is *not* a defect (the file is sound, just
    from another deploy generation) -- it is reported by the store's
    verify sweep separately.
    """
    try:
        open_arena(path, check_state_version=False)
    except ArenaError as exc:
        message = str(exc)
        prefix = f"{path}: "
        return message[len(prefix):] if message.startswith(prefix) \
            else message
    return None


def arena_info(path) -> ArenaInfo:
    """Header summary of a (verified) arena file."""
    arena = open_arena(path, check_state_version=False)
    spec = arena.spec_config
    return ArenaInfo(
        path=Path(path),
        state_version=arena.state_version,
        spec_name=arena.meta.get("spec_name"),
        spec_digest=arena.header.get("spec_digest", ""),
        meta=arena.meta,
        arrays=len(arena.header["arrays"]),
        nbytes=arena.nbytes,
    )


# ----------------------------------------------------------------- store

class ArenaStore:
    """A directory of per-session arenas (``session-<id>.arena``).

    The unit the server's LRU evictor spills to and reloads from, and
    what ``repro state`` inspects.  All writes are atomic; defective
    files found by :meth:`load` are quarantined so a bad spill can
    never wedge a session id forever.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, session_id: int) -> Path:
        return self.directory / f"session-{session_id:016d}{ARENA_SUFFIX}"

    @staticmethod
    def session_id_of(path) -> Optional[int]:
        name = Path(path).name
        if not (name.startswith("session-")
                and name.endswith(ARENA_SUFFIX)):
            return None
        digits = name[len("session-"):-len(ARENA_SUFFIX)]
        return int(digits) if digits.isdigit() else None

    def save(self, session_id: int, spec_config: dict,
             state: Dict[str, np.ndarray],
             meta: Optional[dict] = None) -> int:
        return write_arena(self.path_for(session_id), spec_config, state,
                           meta)

    def load(self, session_id: int) -> Optional[Arena]:
        """Open a session's arena; ``None`` when it has none.

        A defective arena is quarantined (``*.corrupt``) and reported
        as missing -- the caller sees a session that no longer exists,
        not a traceback.  A :class:`StateVersionError` propagates: the
        file is sound and must *not* be quarantined, the deploy
        generations just disagree.
        """
        path = self.path_for(session_id)
        if not path.exists():
            return None
        try:
            return open_arena(path)
        except StateVersionError:
            raise
        except ArenaError:
            quarantine_file(path)
            return None

    def delete(self, session_id: int) -> bool:
        path = self.path_for(session_id)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def paths(self) -> List[Path]:
        return sorted(self.directory.glob(f"*{ARENA_SUFFIX}"))

    def session_ids(self) -> List[int]:
        ids = (self.session_id_of(path) for path in self.paths())
        return sorted(i for i in ids if i is not None)

    def infos(self) -> List[ArenaInfo]:
        """Header summaries of every *sound* arena (defective files are
        skipped, not raised -- ``verify`` is the tool that names them)."""
        summaries: List[ArenaInfo] = []
        for path in self.paths():
            if verify_arena(path) is None:
                summaries.append(arena_info(path))
        return summaries

    def verify(self) -> dict:
        """Sweep every arena; returns ``{checked, defects, stale}``.

        ``defects`` is a list of ``(path, reason)`` for unreadable
        files; ``stale`` lists sound arenas whose state version is not
        this build's (restorable only by the deploy that wrote them).
        """
        defects: List[Tuple[Path, str]] = []
        stale: List[Tuple[Path, int]] = []
        paths = self.paths()
        for path in paths:
            reason = verify_arena(path)
            if reason is not None:
                defects.append((path, reason))
                continue
            info = arena_info(path)
            if info.state_version != STATE_VERSION:
                stale.append((path, info.state_version))
        return {"checked": len(paths), "defects": defects, "stale": stale}

    def compact(self) -> dict:
        """Sweep litter: stray ``*.tmp`` writes, quarantined
        ``*.corrupt`` copies, and arenas that no longer verify (these
        are quarantine-deleted -- they can never be restored).  Sound
        arenas, including stale-version ones, are kept: a rollback may
        still want them.  Returns per-category counts and the bytes
        reclaimed."""
        removed = {"tmp": 0, "corrupt": 0, "defective": 0}
        reclaimed = 0
        for pattern in ("*.tmp", "*.corrupt"):
            for path in self.directory.glob(pattern):
                reclaimed += path.stat().st_size
                path.unlink()
                removed["tmp" if pattern == "*.tmp" else "corrupt"] += 1
        for path in self.paths():
            if verify_arena(path) is not None:
                reclaimed += path.stat().st_size
                path.unlink()
                removed["defective"] += 1
        kept = self.paths()
        return {
            "removed": removed,
            "reclaimed_bytes": reclaimed,
            "kept": len(kept),
            "kept_bytes": sum(p.stat().st_size for p in kept),
        }
