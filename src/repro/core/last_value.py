"""The last value predictor (Lipasti), paper section 2.1.

A direct-mapped, PC-indexed table of 32-bit last values; the prediction
for an instruction is simply the previous value it (or an instruction
aliasing with it) produced.  Best on constant patterns.
"""

from __future__ import annotations

from repro.core.base import ValuePredictor
from repro.core.spec import LastValueSpec
from repro.core.types import MASK32

__all__ = ["LastValuePredictor"]


class LastValuePredictor(ValuePredictor):
    """PC-indexed table of last values (paper Figure 1(a)).

    Parameters
    ----------
    entries:
        Number of table entries; must be a power of two.  The paper
        sweeps 2**6 .. 2**16 in Figure 3.
    """

    def __init__(self, entries: int):
        self.spec = LastValueSpec(entries)  # validates entries
        self.entries = entries
        self._mask = entries - 1
        self._table = [0] * entries
        self.name = self.spec.name

    def predict(self, pc: int) -> int:
        return self._table[(pc >> 2) & self._mask]

    def update(self, pc: int, value: int) -> None:
        self._table[(pc >> 2) & self._mask] = value & MASK32

    def storage_bits(self) -> int:
        """One 32-bit value per entry."""
        return self.spec.storage_bits()
