"""Declarative predictor specifications: the *data* half of the core.

A :class:`PredictorSpec` describes a predictor configuration -- its
tables, hash, and storage model -- without instantiating any state.
``name``, ``storage_bits()`` and config construction live here, so
sweeps, CLIs and process pools can label, size and ship configurations
as plain (picklable, hashable) values; :meth:`PredictorSpec.build`
materialises the stateful predictor when a trace actually needs to be
replayed.

Specs are also callables (``spec() == spec.build()``), so every
harness function that accepts a zero-argument predictor factory accepts
a spec unchanged.  The engine layer (:mod:`repro.core.engines`) keys
its vectorised kernels off the spec ``family``; the scalar predictors
built by :meth:`build` carry their spec back on a ``.spec`` attribute
(``None`` for configurations the spec layer cannot represent, e.g. a
hand-rolled :class:`~repro.core.hashing.HistoryHash` subclass).

:meth:`PredictorSpec.extract_state` defines the canonical table-state
snapshot (a dict of int64 NumPy arrays) that the cross-engine
equivalence suite compares bit-for-bit between engines.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.types import WORD_BITS, require_power_of_two

__all__ = [
    "TableSpec",
    "HashSpec",
    "PredictorSpec",
    "LastValueSpec",
    "LastNSpec",
    "StrideSpec",
    "TwoDeltaStrideSpec",
    "FCMSpec",
    "DFCMSpec",
    "OracleHybridSpec",
    "MetaHybridSpec",
    "DelayedSpec",
    "SPEC_FAMILIES",
    "spec_of",
    "spec_from_config",
    "spec_from_cli",
]


@dataclass(frozen=True)
class TableSpec:
    """One hardware table: how many entries, how wide each entry is."""

    name: str
    entries: int
    entry_bits: int

    @property
    def bits(self) -> int:
        return self.entries * self.entry_bits


@dataclass(frozen=True)
class HashSpec:
    """Declarative form of a :class:`~repro.core.hashing.HistoryHash`.

    ``kind`` is one of ``'fs'`` / ``'xor'`` / ``'concat'`` (see
    :func:`repro.core.hashing.make_hash`).  ``order=None`` on ``'fs'``
    means the paper's ``ceil(index_bits / shift)`` coupling.
    """

    index_bits: int
    kind: str = "fs"
    order: Optional[int] = None
    shift: int = 5

    def __post_init__(self):
        if self.kind not in ("fs", "xor", "concat"):
            raise ValueError(f"unknown hash kind {self.kind!r}")
        if self.order is None:
            if self.kind != "fs":
                raise ValueError(
                    f"hash kind {self.kind!r} requires an explicit order")
            # Normalise to the paper's coupling so specs compare equal
            # no matter whether the order was spelled out.
            from repro.core.hashing import order_for_index_bits
            object.__setattr__(
                self, "order", order_for_index_bits(self.index_bits, self.shift))

    @property
    def resolved_order(self) -> int:
        return self.order

    def build(self):
        from repro.core.hashing import make_hash
        if self.kind == "fs":
            return make_hash("fs", self.index_bits, self.order, shift=self.shift)
        return make_hash(self.kind, self.index_bits, self.order)

    @classmethod
    def from_hash(cls, hash_fn) -> Optional["HashSpec"]:
        """Spec for one of the three known hash classes, else ``None``.

        Exact type checks on purpose: a subclass may override ``step``
        or ``index``, and a spec rebuilt in another process must
        reproduce the hash bit-for-bit.
        """
        from repro.core.hashing import ConcatHash, FoldShiftHash, XorFoldHash
        if type(hash_fn) is FoldShiftHash:
            return cls(hash_fn.index_bits, "fs", hash_fn.order, hash_fn.shift)
        if type(hash_fn) is XorFoldHash:
            return cls(hash_fn.index_bits, "xor", hash_fn.order)
        if type(hash_fn) is ConcatHash:
            return cls(hash_fn.index_bits, "concat", hash_fn.order)
        return None

    def to_config(self) -> dict:
        return {"kind": self.kind, "index_bits": self.index_bits,
                "order": self.order, "shift": self.shift}


def _as_array(values, dtype=np.int64) -> np.ndarray:
    return np.asarray(values, dtype=dtype)


@dataclass(frozen=True)
class PredictorSpec:
    """Base class for family specs.

    Subclasses define ``family`` (a class attribute used by engine
    dispatch and config round-tripping), ``name``, :meth:`tables` and
    :meth:`build`; storage is always the sum of the declared tables.
    """

    family = "abstract"

    @property
    def name(self) -> str:
        raise NotImplementedError

    def tables(self) -> Tuple[TableSpec, ...]:
        raise NotImplementedError

    def build(self):
        raise NotImplementedError

    def storage_bits(self) -> int:
        return sum(table.bits for table in self.tables())

    def storage_kbit(self) -> float:
        return self.storage_bits() / 1024.0

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        """Canonical table snapshot of a predictor built from this spec."""
        raise NotImplementedError

    def __call__(self):
        """Specs double as zero-argument predictor factories."""
        return self.build()

    def to_config(self) -> dict:
        config = {"family": self.family}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, HashSpec):
                value = value.to_config()
            elif isinstance(value, tuple) and value and isinstance(value[0], PredictorSpec):
                value = [c.to_config() for c in value]
            config[f.name] = value
        return config


@dataclass(frozen=True)
class LastValueSpec(PredictorSpec):
    entries: int

    family = "last_value"

    def __post_init__(self):
        require_power_of_two(self.entries, "last value table size")

    @property
    def name(self) -> str:
        return f"lvp_{self.entries}"

    def tables(self) -> Tuple[TableSpec, ...]:
        return (TableSpec("values", self.entries, WORD_BITS),)

    def build(self):
        from repro.core.last_value import LastValuePredictor
        return LastValuePredictor(self.entries)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return {"values": _as_array(predictor._table)}


@dataclass(frozen=True)
class LastNSpec(PredictorSpec):
    entries: int
    n: int = 4
    counter_bits: int = 2

    family = "last_n"

    def __post_init__(self):
        require_power_of_two(self.entries, "last-n table size")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.counter_bits < 1:
            raise ValueError(f"counter_bits must be >= 1, got {self.counter_bits}")

    @property
    def name(self) -> str:
        return f"last{self.n}_{self.entries}"

    def tables(self) -> Tuple[TableSpec, ...]:
        lru_bits = max(1, (self.n - 1).bit_length())
        return (
            TableSpec("values", self.entries * self.n, WORD_BITS),
            TableSpec("counters", self.entries * self.n, self.counter_bits),
            TableSpec("stamps", self.entries * self.n, lru_bits),
        )

    def build(self):
        from repro.core.last_n import LastNValuePredictor
        return LastNValuePredictor(self.entries, self.n, self.counter_bits)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return {
            "values": _as_array(predictor._values),
            "counters": _as_array(predictor._counters),
            "stamps": _as_array(predictor._stamps),
            "clock": _as_array([predictor._clock]),
        }


@dataclass(frozen=True)
class StrideSpec(PredictorSpec):
    entries: int
    counter_bits: int = 3
    counter_inc: int = 1
    counter_dec: int = 2

    family = "stride"

    def __post_init__(self):
        require_power_of_two(self.entries, "stride table size")

    @property
    def name(self) -> str:
        return f"stride_{self.entries}"

    def tables(self) -> Tuple[TableSpec, ...]:
        return (
            TableSpec("last", self.entries, WORD_BITS),
            TableSpec("stride", self.entries, WORD_BITS),
            TableSpec("conf", self.entries, self.counter_bits),
        )

    def build(self):
        from repro.core.stride import StridePredictor
        return StridePredictor(self.entries, self.counter_bits,
                               self.counter_inc, self.counter_dec)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return {
            "last": _as_array(predictor._last),
            "stride": _as_array(predictor._stride),
            "conf": _as_array(predictor._conf.values),
        }


@dataclass(frozen=True)
class TwoDeltaStrideSpec(PredictorSpec):
    entries: int

    family = "stride2d"

    def __post_init__(self):
        require_power_of_two(self.entries, "two-delta table size")

    @property
    def name(self) -> str:
        return f"stride2d_{self.entries}"

    def tables(self) -> Tuple[TableSpec, ...]:
        return (
            TableSpec("last", self.entries, WORD_BITS),
            TableSpec("s1", self.entries, WORD_BITS),
            TableSpec("s2", self.entries, WORD_BITS),
        )

    def build(self):
        from repro.core.stride import TwoDeltaStridePredictor
        return TwoDeltaStridePredictor(self.entries)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return {
            "last": _as_array(predictor._last),
            "s1": _as_array(predictor._s1),
            "s2": _as_array(predictor._s2),
        }


def _l2_index_bits(l2_entries: int) -> int:
    return l2_entries.bit_length() - 1


def _resolve_hash(spec_hash: Optional[HashSpec], l2_entries: int,
                  what: str) -> HashSpec:
    index_bits = _l2_index_bits(l2_entries)
    if spec_hash is None:
        return HashSpec(index_bits)
    if spec_hash.index_bits != index_bits:
        raise ValueError(
            f"hash produces {spec_hash.index_bits}-bit indices but the "
            f"{what} level-2 table needs {index_bits}-bit indices"
        )
    return spec_hash


@dataclass(frozen=True)
class FCMSpec(PredictorSpec):
    l1_entries: int
    l2_entries: int
    hash: Optional[HashSpec] = None

    family = "fcm"

    def __post_init__(self):
        require_power_of_two(self.l1_entries, "FCM level-1 size")
        require_power_of_two(self.l2_entries, "FCM level-2 size")
        object.__setattr__(
            self, "hash", _resolve_hash(self.hash, self.l2_entries, "FCM"))

    @property
    def name(self) -> str:
        return f"fcm_l1={self.l1_entries}_l2={self.l2_entries}"

    def tables(self) -> Tuple[TableSpec, ...]:
        return (
            TableSpec("l1", self.l1_entries, self.hash.index_bits),
            TableSpec("l2", self.l2_entries, WORD_BITS),
        )

    def build(self):
        from repro.core.fcm import FCMPredictor
        return FCMPredictor(self.l1_entries, self.l2_entries, self.hash.build())

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return {
            "l1": _as_array(predictor._l1),
            "l2": _as_array(predictor._l2),
        }


@dataclass(frozen=True)
class DFCMSpec(PredictorSpec):
    l1_entries: int
    l2_entries: int
    hash: Optional[HashSpec] = None
    stride_bits: int = 32

    family = "dfcm"

    def __post_init__(self):
        require_power_of_two(self.l1_entries, "DFCM level-1 size")
        require_power_of_two(self.l2_entries, "DFCM level-2 size")
        if not 1 <= self.stride_bits <= 32:
            raise ValueError(
                f"stride_bits must be in [1, 32], got {self.stride_bits}")
        object.__setattr__(
            self, "hash", _resolve_hash(self.hash, self.l2_entries, "DFCM"))

    @property
    def name(self) -> str:
        name = f"dfcm_l1={self.l1_entries}_l2={self.l2_entries}"
        if self.stride_bits != 32:
            name += f"_s{self.stride_bits}"
        return name

    def tables(self) -> Tuple[TableSpec, ...]:
        return (
            TableSpec("last", self.l1_entries, WORD_BITS),
            TableSpec("hist", self.l1_entries, self.hash.index_bits),
            TableSpec("l2", self.l2_entries, self.stride_bits),
        )

    def build(self):
        from repro.core.dfcm import DFCMPredictor
        return DFCMPredictor(self.l1_entries, self.l2_entries,
                             self.hash.build(), self.stride_bits)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return {
            "last": _as_array(predictor._last),
            "hist": _as_array(predictor._hist),
            "l2": _as_array(predictor._l2),
        }


def _component_state(components, predictors) -> Dict[str, np.ndarray]:
    state: Dict[str, np.ndarray] = {}
    for i, (spec, predictor) in enumerate(zip(components, predictors)):
        for key, value in spec.extract_state(predictor).items():
            state[f"c{i}.{key}"] = value
    return state


@dataclass(frozen=True)
class OracleHybridSpec(PredictorSpec):
    components: Tuple[PredictorSpec, ...]
    label: Optional[str] = None

    family = "oracle_hybrid"

    def __post_init__(self):
        object.__setattr__(self, "components", tuple(self.components))
        if not self.components:
            raise ValueError("a hybrid needs at least one component")

    @property
    def name(self) -> str:
        return self.label or "+".join(c.name for c in self.components)

    def tables(self) -> Tuple[TableSpec, ...]:
        return tuple(t for c in self.components for t in c.tables())

    def build(self):
        from repro.core.hybrid import OracleHybridPredictor
        return OracleHybridPredictor([c.build() for c in self.components],
                                     name=self.label)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        return _component_state(self.components, predictor.components)


@dataclass(frozen=True)
class MetaHybridSpec(PredictorSpec):
    components: Tuple[PredictorSpec, ...]
    meta_entries: int = 0
    counter_bits: int = 2
    counter_inc: int = 1
    counter_dec: int = 1
    label: Optional[str] = None

    family = "meta_hybrid"

    def __post_init__(self):
        object.__setattr__(self, "components", tuple(self.components))
        if not self.components:
            raise ValueError("a hybrid needs at least one component")
        require_power_of_two(self.meta_entries, "meta-predictor table size")

    @property
    def name(self) -> str:
        return self.label or (
            "meta(" + "+".join(c.name for c in self.components) + ")")

    def tables(self) -> Tuple[TableSpec, ...]:
        meta = TableSpec("meta", self.meta_entries,
                         self.counter_bits * len(self.components))
        return (meta,) + tuple(t for c in self.components for t in c.tables())

    def build(self):
        from repro.core.hybrid import MetaHybridPredictor
        return MetaHybridPredictor(
            [c.build() for c in self.components], self.meta_entries,
            self.counter_bits, self.counter_inc, self.counter_dec,
            name=self.label)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        state = _component_state(self.components, predictor.components)
        for i, bank in enumerate(predictor._meta):
            state[f"meta{i}"] = _as_array(bank.values)
        return state


@dataclass(frozen=True)
class DelayedSpec(PredictorSpec):
    inner: PredictorSpec = None
    delay: int = 0

    family = "delayed"

    def __post_init__(self):
        if not isinstance(self.inner, PredictorSpec):
            raise ValueError("DelayedSpec needs an inner PredictorSpec")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    @property
    def name(self) -> str:
        return f"{self.inner.name}_d{self.delay}"

    def tables(self) -> Tuple[TableSpec, ...]:
        return self.inner.tables()

    def build(self):
        from repro.core.delayed import DelayedUpdatePredictor
        return DelayedUpdatePredictor(self.inner.build(), self.delay)

    def extract_state(self, predictor) -> Dict[str, np.ndarray]:
        state = {f"inner.{k}": v
                 for k, v in self.inner.extract_state(predictor.inner).items()}
        pending = list(predictor._pending)
        state["pending_pc"] = _as_array([pc for pc, _ in pending])
        state["pending_value"] = _as_array([v for _, v in pending])
        return state


SPEC_FAMILIES = {
    cls.family: cls
    for cls in (LastValueSpec, LastNSpec, StrideSpec, TwoDeltaStrideSpec,
                FCMSpec, DFCMSpec, OracleHybridSpec, MetaHybridSpec,
                DelayedSpec)
}


def spec_of(predictor) -> Optional[PredictorSpec]:
    """The declarative twin of a predictor instance, or ``None``.

    Exact type checks on purpose: a subclass inherits the ``spec``
    attribute its parent's ``__init__`` set, but not necessarily the
    semantics that spec promises (e.g. the tagged estimators change
    what gets predicted), so only the facade classes themselves are
    trusted to be engine-replayable.
    """
    spec = getattr(predictor, "spec", None)
    if spec is None:
        return None
    from repro.core.delayed import DelayedUpdatePredictor
    from repro.core.dfcm import DFCMPredictor
    from repro.core.fcm import FCMPredictor
    from repro.core.hybrid import MetaHybridPredictor, OracleHybridPredictor
    from repro.core.last_n import LastNValuePredictor
    from repro.core.last_value import LastValuePredictor
    from repro.core.stride import StridePredictor, TwoDeltaStridePredictor
    exact = (LastValuePredictor, LastNValuePredictor, StridePredictor,
             TwoDeltaStridePredictor, FCMPredictor, DFCMPredictor,
             OracleHybridPredictor, MetaHybridPredictor,
             DelayedUpdatePredictor)
    return spec if type(predictor) in exact else None


def spec_from_config(config: dict) -> PredictorSpec:
    """Rebuild a spec from its :meth:`PredictorSpec.to_config` dict."""
    config = dict(config)
    try:
        cls = SPEC_FAMILIES[config.pop("family")]
    except KeyError as exc:
        raise ValueError(f"unknown predictor family {exc.args[0]!r}") from None
    if "hash" in config and isinstance(config["hash"], dict):
        config["hash"] = HashSpec(**config["hash"])
    if "components" in config:
        config["components"] = tuple(
            spec_from_config(c) for c in config["components"])
    if "inner" in config and isinstance(config["inner"], dict):
        config["inner"] = spec_from_config(config["inner"])
    return cls(**config)


def spec_from_cli(kind: str, l1_entries: int, l2_entries: int) -> PredictorSpec:
    """Spec for the CLI's ``--predictor`` / ``--l1`` / ``--l2`` flags."""
    if kind == "lvp":
        return LastValueSpec(l1_entries)
    if kind == "lastn":
        return LastNSpec(l1_entries)
    if kind == "stride":
        return StrideSpec(l1_entries)
    if kind == "stride2d":
        return TwoDeltaStrideSpec(l1_entries)
    if kind == "fcm":
        return FCMSpec(l1_entries, l2_entries)
    if kind == "dfcm":
        return DFCMSpec(l1_entries, l2_entries)
    raise ValueError(f"unknown predictor kind {kind!r}")
