"""Confidence estimation for value predictors (paper section 4.2 outlook).

The paper ends its aliasing analysis with a design suggestion it does
not evaluate:

    "These results suggest that the design of a confidence estimator
    for a (D)FCM predictor should include tagging the level-2 table
    with some information to track hash-aliasing [...] Some bits of a
    second hashing function, orthogonal to the main one, seems to be a
    good choice for the tag."

This module builds that estimator and the classic alternative:

- :class:`CounterConfidencePredictor` -- the standard scheme: a
  PC-indexed bank of saturating counters; a prediction is *confident*
  when its counter sits at/above a threshold.

- :class:`TaggedDFCMPredictor` / :class:`TaggedFCMPredictor` -- the
  paper's suggestion: every level-2 entry carries a small tag computed
  by a second fold-and-shift hash (different shift constant, hence
  "orthogonal") of the same history.  A prediction is confident only
  when the stored tag matches the current history's tag, i.e. when the
  level-2 entry was (very likely) trained by the same context rather
  than a hash-alias.

- both can be combined; :func:`measure_confidence` reports coverage
  (fraction of predictions deemed confident) and the accuracy within
  the confident subset, the two numbers a confidence mechanism trades
  against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.base import ValuePredictor
from repro.core.confidence import CounterBank
from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.hashing import FoldShiftHash
from repro.core.types import MASK32, require_power_of_two
from repro.trace.trace import ValueTrace

__all__ = [
    "ConfidentPredictor",
    "CounterConfidencePredictor",
    "TaggedFCMPredictor",
    "TaggedDFCMPredictor",
    "CoverageResult",
    "measure_confidence",
]


class ConfidentPredictor(ValuePredictor):
    """A predictor that can also say how sure it is.

    Subclasses implement :meth:`predict_confident`; ``predict`` is the
    unconditional prediction so confident predictors still compose with
    the rest of the harness.
    """

    def predict_confident(self, pc: int) -> Tuple[int, bool]:
        """(predicted value, is the prediction confident)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CoverageResult:
    """Coverage / accuracy split of a confidence-gated predictor.

    In a processor, only confident predictions would be used for
    speculation; ``accuracy_when_confident`` bounds the misspeculation
    rate and ``coverage`` the fraction of instructions that benefit.
    """

    predictor_name: str
    trace_name: str
    total: int
    confident: int
    confident_correct: int
    overall_correct: int

    @property
    def coverage(self) -> float:
        return self.confident / self.total if self.total else 0.0

    @property
    def accuracy_when_confident(self) -> float:
        return (self.confident_correct / self.confident
                if self.confident else 0.0)

    @property
    def overall_accuracy(self) -> float:
        return self.overall_correct / self.total if self.total else 0.0


class CounterConfidencePredictor(ConfidentPredictor):
    """Classic confidence: PC-indexed saturating counters over any inner
    predictor.

    Parameters follow the paper's stride-predictor counter (3 bits,
    +1/-2); ``threshold`` is the minimum counter value for confidence.
    """

    def __init__(self, inner: ValuePredictor, entries: int,
                 counter_bits: int = 3, threshold: int | None = None,
                 inc: int = 1, dec: int = 2):
        require_power_of_two(entries, "confidence table size")
        self.inner = inner
        self.entries = entries
        self._mask = entries - 1
        self._counters = CounterBank(entries, counter_bits, inc, dec)
        self.threshold = (self._counters.maximum if threshold is None
                          else threshold)
        if not 0 <= self.threshold <= self._counters.maximum:
            raise ValueError(
                f"threshold {self.threshold} outside "
                f"[0, {self._counters.maximum}]")
        self.spec = None  # no declarative twin; always simulated scalar
        self.name = f"conf({inner.name})"

    def predict(self, pc: int) -> int:
        return self.inner.predict(pc)

    def predict_confident(self, pc: int) -> Tuple[int, bool]:
        confident = (self._counters[(pc >> 2) & self._mask]
                     >= self.threshold)
        if isinstance(self.inner, ConfidentPredictor):
            # Composition: wrapping a tagged predictor requires both
            # signals (the counter tracks the instruction's history,
            # the tag the level-2 entry's provenance).
            prediction, inner_confident = self.inner.predict_confident(pc)
            return prediction, confident and inner_confident
        return self.inner.predict(pc), confident

    def update(self, pc: int, value: int) -> None:
        correct = self.inner.predict(pc) == (value & MASK32)
        self._counters.record((pc >> 2) & self._mask, correct)
        self.inner.update(pc, value)

    def storage_bits(self) -> int:
        return (self.inner.storage_bits()
                + self.entries * self._counters.bits)


class _TagMixin:
    """Shared level-2 tagging logic for the (D)FCM variants.

    The tag hash is a second FoldShiftHash over the same history with a
    different shift constant; its state is advanced in lockstep with
    the primary hash, and ``tag_bits`` of its index are stored beside
    every level-2 payload.
    """

    def _init_tags(self, tag_bits: int, tag_shift: int) -> None:
        if not 1 <= tag_bits <= 16:
            raise ValueError(f"tag_bits must be in [1, 16], got {tag_bits}")
        index_bits = self.hash_fn.index_bits
        if tag_shift == getattr(self.hash_fn, "shift", None):
            raise ValueError(
                "the tag hash must use a different shift than the primary "
                "hash to be orthogonal")
        self.tag_bits = tag_bits
        # The inherited (D)FCM spec does not describe the tag tables, so
        # tagged predictors opt out of the spec/batch fast path.
        self.spec = None
        self.tag_hash = FoldShiftHash(index_bits, shift=tag_shift)
        self._tag_state = [0] * self.l1_entries
        self._l2_tag = [-1] * self.l2_entries  # -1 = never written
        self._tag_mask = (1 << tag_bits) - 1

    def _current_tag(self, l1_index: int) -> int:
        return self.tag_hash.index(self._tag_state[l1_index]) & self._tag_mask

    def predict_confident(self, pc: int) -> Tuple[int, bool]:
        l1_index = self.l1_index(pc)
        l2_index = self.l2_index(pc)
        confident = self._l2_tag[l2_index] == self._current_tag(l1_index)
        return self.predict(pc), confident

    def _tag_update(self, pc: int, element: int) -> None:
        """Write the tag for the entry being trained, advance the state."""
        l1_index = self.l1_index(pc)
        self._l2_tag[self.l2_index(pc)] = self._current_tag(l1_index)
        self._tag_state[l1_index] = self.tag_hash.step(
            self._tag_state[l1_index], element)

    def _tag_storage_bits(self) -> int:
        """Tags in L2 plus the second hash state per L1 entry."""
        return (self.l2_entries * self.tag_bits
                + self.l1_entries * self.tag_hash.index_bits)


class TaggedFCMPredictor(_TagMixin, FCMPredictor, ConfidentPredictor):
    """FCM whose level-2 entries carry an orthogonal-hash tag."""

    def __init__(self, l1_entries: int, l2_entries: int,
                 tag_bits: int = 4, tag_shift: int = 3, **kwargs):
        FCMPredictor.__init__(self, l1_entries, l2_entries, **kwargs)
        self._init_tags(tag_bits, tag_shift)
        self.name = f"tagfcm_l1={l1_entries}_l2={l2_entries}_t{tag_bits}"

    def update(self, pc: int, value: int) -> None:
        value &= MASK32
        self._tag_update(pc, value)
        FCMPredictor.update(self, pc, value)

    def storage_bits(self) -> int:
        return FCMPredictor.storage_bits(self) + self._tag_storage_bits()


class TaggedDFCMPredictor(_TagMixin, DFCMPredictor, ConfidentPredictor):
    """DFCM whose level-2 entries carry an orthogonal-hash tag.

    The tag hash is fed the same difference stream as the primary hash.
    """

    def __init__(self, l1_entries: int, l2_entries: int,
                 tag_bits: int = 4, tag_shift: int = 3, **kwargs):
        DFCMPredictor.__init__(self, l1_entries, l2_entries, **kwargs)
        self._init_tags(tag_bits, tag_shift)
        self.name = f"tagdfcm_l1={l1_entries}_l2={l2_entries}_t{tag_bits}"

    def update(self, pc: int, value: int) -> None:
        value &= MASK32
        stride = (value - self.last_value(pc)) & MASK32
        self._tag_update(pc, stride)
        DFCMPredictor.update(self, pc, value)

    def storage_bits(self) -> int:
        return DFCMPredictor.storage_bits(self) + self._tag_storage_bits()


def measure_confidence(predictor: ConfidentPredictor,
                       trace: ValueTrace) -> CoverageResult:
    """Replay *trace*, splitting predictions by the confidence signal."""
    total = confident = confident_correct = overall_correct = 0
    for pc, value in trace.records():
        predicted, is_confident = predictor.predict_confident(pc)
        correct = predicted == value
        total += 1
        overall_correct += correct
        if is_confident:
            confident += 1
            confident_correct += correct
        predictor.update(pc, value)
    return CoverageResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        total=total,
        confident=confident,
        confident_correct=confident_correct,
        overall_correct=overall_correct,
    )
