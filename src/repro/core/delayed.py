"""Delayed table update, paper section 4.5.

In a real pipeline the outcome of an instruction is only known many
instructions after its prediction was made.  The paper models this with
a delay ``d``: a prediction is performed, but the corresponding table
update happens only after ``d`` further predictions.  A static
instruction recurring within a window of ``d`` therefore predicts from
stale history.

:class:`DelayedUpdatePredictor` wraps any predictor: ``update`` calls
are buffered in a FIFO of depth ``d`` and applied to the inner
predictor as they fall out of the window.  ``d = 0`` is the immediate
update of the rest of the paper.  Buffered updates are deliberately
*not* flushed at end of trace -- the tail is vanishingly small and the
paper measures steady-state behaviour.
"""

from __future__ import annotations

from collections import deque

from repro.core.base import ValuePredictor

__all__ = ["DelayedUpdatePredictor"]


class DelayedUpdatePredictor(ValuePredictor):
    """Wrap *inner* so its training lags ``delay`` predictions behind."""

    def __init__(self, inner: ValuePredictor, delay: int):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        from repro.core.spec import DelayedSpec, spec_of
        inner_spec = spec_of(inner)
        self.spec = (DelayedSpec(inner_spec, delay)
                     if inner_spec is not None else None)
        self.inner = inner
        self.delay = delay
        self._pending: deque = deque()
        self.name = f"{inner.name}_d{delay}"

    def predict(self, pc: int) -> int:
        return self.inner.predict(pc)

    def update(self, pc: int, value: int) -> None:
        if self.delay == 0:
            self.inner.update(pc, value)
            return
        self._pending.append((pc, value))
        if len(self._pending) > self.delay:
            old_pc, old_value = self._pending.popleft()
            self.inner.update(old_pc, old_value)

    def step(self, pc: int, value: int) -> bool:
        # Route through the inner step only for delay 0 so oracle
        # hybrids keep their semantics; with a real delay the outcome
        # is not yet known at prediction time, so the generic
        # predict-then-buffer path is the honest model.
        if self.delay == 0:
            return self.inner.step(pc, value)
        return super().step(pc, value)

    def pending_updates(self) -> int:
        """Number of buffered (not yet applied) updates."""
        return len(self._pending)

    def storage_bits(self) -> int:
        """The wrapped predictor's storage; the window is pipeline state."""
        return self.inner.storage_bits()
