"""Saturating confidence counters.

The paper's stride predictor uses a 3-bit saturating counter "which is
increased by 1 on a correct prediction and decreased by 2 on a wrong
prediction", and replaces the stored stride whenever the counter is
below its maximum value (7).  The same counter shape is reused by the
realisable meta-predictor in :mod:`repro.core.hybrid`.
"""

from __future__ import annotations

__all__ = ["SaturatingCounter", "CounterBank"]


class SaturatingCounter:
    """A single saturating counter in ``[0, 2**bits - 1]``."""

    __slots__ = ("bits", "maximum", "inc", "dec", "value")

    def __init__(self, bits: int = 3, inc: int = 1, dec: int = 2, initial: int = 0):
        if bits < 1:
            raise ValueError(f"counter width must be >= 1 bit, got {bits}")
        if inc < 0 or dec < 0:
            raise ValueError("inc and dec must be non-negative")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(
                f"initial value {initial} outside [0, {self.maximum}]"
            )
        self.inc = inc
        self.dec = dec
        self.value = initial

    def record(self, correct: bool) -> int:
        """Advance the counter for one outcome; returns the new value."""
        if correct:
            self.value = min(self.maximum, self.value + self.inc)
        else:
            self.value = max(0, self.value - self.dec)
        return self.value

    @property
    def saturated(self) -> bool:
        """True when the counter sits at its maximum."""
        return self.value == self.maximum


class CounterBank:
    """A direct-mapped table of saturating counters (one per entry).

    Stored as a flat list of ints for speed; the update rule matches
    :class:`SaturatingCounter` (+inc on correct, -dec on wrong,
    saturating at 0 and ``2**bits - 1``).
    """

    __slots__ = ("bits", "maximum", "inc", "dec", "values")

    def __init__(self, entries: int, bits: int = 3, inc: int = 1, dec: int = 2,
                 initial: int = 0):
        if entries < 1:
            raise ValueError(f"need at least one counter, got {entries}")
        proto = SaturatingCounter(bits, inc, dec, initial)  # validates args
        self.bits = bits
        self.maximum = proto.maximum
        self.inc = inc
        self.dec = dec
        self.values = [initial] * entries

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def record(self, index: int, correct: bool) -> int:
        """Advance counter *index* for one outcome; returns the new value."""
        if correct:
            value = self.values[index] + self.inc
            if value > self.maximum:
                value = self.maximum
        else:
            value = self.values[index] - self.dec
            if value < 0:
                value = 0
        self.values[index] = value
        return value

    def saturated(self, index: int) -> bool:
        """True when counter *index* sits at its maximum."""
        return self.values[index] == self.maximum
