"""Level-2 occupancy by stride patterns (paper Figures 6 and 9).

The measurement itself lives in :mod:`repro.telemetry.tables` with the
rest of the table-usage accounting (see :class:`TableUsageAuditor`);
this module re-exports the historical public API unchanged.
"""

from __future__ import annotations

from repro.telemetry.tables import OccupancyResult, stride_occupancy

__all__ = ["OccupancyResult", "stride_occupancy"]
