"""Level-2 occupancy by stride patterns (paper Figures 6 and 9).

The paper measures how badly stride patterns crowd the (D)FCM level-2
table: a value is declared *part of a stride pattern* "if a stride
predictor can correctly predict it" (a 64 K-entry reference stride
predictor in the paper); each time the (D)FCM is accessed to predict
such a value, a counter attached to the level-2 entry being read is
incremented.  Sorting the counters in descending order gives the curves
of Figures 6 (FCM only) and 9 (FCM vs DFCM): the DFCM concentrates
stride accesses on a handful of entries while the FCM spreads them over
virtually the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.stride import StridePredictor
from repro.core.types import MASK32

__all__ = ["OccupancyResult", "stride_occupancy"]


@dataclass
class OccupancyResult:
    """Sorted per-entry stride-access counts for one predictor."""

    predictor_name: str
    l2_entries: int
    sorted_counts: List[int]  # descending; length == l2_entries
    stride_accesses: int      # total accesses that were part of a stride
    total_accesses: int

    def entries_with_at_least(self, threshold: int) -> int:
        """How many level-2 entries took >= *threshold* stride accesses.

        The paper's headline numbers are of this form ("more than 100
        entries are accessed more than 100 times", "582 entries more
        than 1000 times").
        """
        count = 0
        for accesses in self.sorted_counts:
            if accesses < threshold:
                break
            count += 1
        return count

    def top_share(self, k: int) -> float:
        """Fraction of all stride accesses landing on the top-*k* entries."""
        if self.stride_accesses == 0:
            return 0.0
        return sum(self.sorted_counts[:k]) / self.stride_accesses


def stride_occupancy(
    predictor: Union[FCMPredictor, DFCMPredictor],
    records: Iterable[Tuple[int, int]],
    reference: StridePredictor | None = None,
) -> OccupancyResult:
    """Run *records* through *predictor*, counting stride accesses per
    level-2 entry.

    Parameters
    ----------
    predictor:
        Fresh FCM or DFCM to instrument (it is trained as a side
        effect).
    records:
        The (pc, value) stream.
    reference:
        The stride predictor defining "part of a stride pattern";
        defaults to the paper's 64 K-entry table.
    """
    if not isinstance(predictor, (FCMPredictor, DFCMPredictor)):
        raise TypeError(
            "stride_occupancy instruments FCMPredictor or DFCMPredictor, "
            f"got {type(predictor).__name__}")
    if reference is None:
        reference = StridePredictor(1 << 16)
    counters = [0] * predictor.l2_entries
    stride_accesses = 0
    total = 0
    for pc, value in records:
        value &= MASK32
        total += 1
        if reference.predict(pc) == value:
            counters[predictor.l2_index(pc)] += 1
            stride_accesses += 1
        reference.update(pc, value)
        predictor.update(pc, value)
    counters.sort(reverse=True)
    return OccupancyResult(
        predictor_name=predictor.name,
        l2_entries=predictor.l2_entries,
        sorted_counts=counters,
        stride_accesses=stride_accesses,
        total_accesses=total,
    )
