"""History hashing functions for two-level context predictors.

The paper follows Sazeides & Smith ("Implementations of context based
value predictors", TR ECE97-8) and uses their *fold-and-shift* FS(R-5)
function: with a level-2 table of ``2**n`` entries, every history value
is folded to ``n`` bits by XOR-ing its ``n``-bit chunks, each folded
value is shifted left by ``k * age`` bit positions (``k = 5`` for R-5;
age 0 is the most recent value), and the shifted values are XOR-ed into
the final ``n``-bit index.

The paper couples the predictor *order* (history length) to the table
size as ``order = ceil(n / k)``:

    L2 size   2^8  2^10  2^12  2^14  2^16  2^18  2^20
    order      2     2     3     3     4     4     4

That coupling is what makes the hash *incrementally* computable: since
``k * order >= n``, the oldest value's contribution has been shifted
entirely out of the ``n``-bit index after ``order`` insertions, so the
level-1 table only needs to store the hashed history:

    new_index = ((old_index << k) ^ fold(new_value)) & (2**n - 1)

:class:`FoldShiftHash` implements the incremental form.  For unit tests
and for the paper's Figure 4 / Figure 8 worked examples (which assume a
*concatenating* hash) :class:`ConcatHash` keeps explicit histories, and
:class:`XorFoldHash` (shift 0) is provided as an ablation point.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.types import MASK32, require_power_of_two

__all__ = [
    "HistoryHash",
    "FoldShiftHash",
    "XorFoldHash",
    "ConcatHash",
    "fold",
    "order_for_index_bits",
    "make_hash",
]


def _fold_masked(value: int, n: int, mask: int) -> int:
    """:func:`fold` with the chunk mask precomputed by the caller."""
    value &= MASK32
    folded = 0
    while value:
        folded ^= value & mask
        value >>= n
    return folded


def fold(value: int, n: int) -> int:
    """Fold a 32-bit word into ``n`` bits by XOR-ing its ``n``-bit chunks.

    ``fold(v, 32)`` is the identity; ``fold(v, 1)`` is the parity of the
    word.  ``n`` must be in ``[1, 32]``.
    """
    if not 1 <= n <= 32:
        raise ValueError(f"fold width must be in [1, 32], got {n}")
    return _fold_masked(value, n, (1 << n) - 1)


def order_for_index_bits(n: int, shift: int = 5) -> int:
    """The paper's order/table-size coupling: ``order = ceil(n / shift)``.

    This is the largest history length whose oldest element still
    influences the ``n``-bit index under a shift of ``shift`` bits per
    age step -- and therefore the order at which the FS(R-k) hash is
    exactly incrementally computable.
    """
    if n < 1:
        raise ValueError(f"index bits must be >= 1, got {n}")
    if shift < 1:
        raise ValueError(f"shift must be >= 1, got {shift}")
    return math.ceil(n / shift)


class HistoryHash(ABC):
    """Maps a history of 32-bit values to an index in ``[0, 2**n)``.

    A hash object is stateless; predictors store one *hash state* word
    per level-1 entry and advance it through :meth:`step`.  The state
    encoding is hash-specific (the FS hash state *is* the index; the
    concatenating hash packs the explicit history into the state).
    """

    def __init__(self, index_bits: int, order: int):
        if index_bits < 1:
            raise ValueError(f"index_bits must be >= 1, got {index_bits}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.index_bits = index_bits
        self.order = order
        self.mask = (1 << index_bits) - 1

    @property
    def initial_state(self) -> int:
        """Hash state of the empty history."""
        return 0

    @abstractmethod
    def step(self, state: int, value: int) -> int:
        """Return the state after appending *value* to the history."""

    @abstractmethod
    def index(self, state: int) -> int:
        """Extract the level-2 index from a hash state."""

    def of_history(self, history) -> int:
        """Index of an explicit history (oldest value first)."""
        state = self.initial_state
        for value in history:
            state = self.step(state, value)
        return self.index(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(index_bits={self.index_bits}, "
            f"order={self.order})"
        )


class FoldShiftHash(HistoryHash):
    """Sazeides' FS(R-k) fold-and-shift hash, incremental form.

    The default ``shift=5`` is the paper's FS(R-5).  When ``order`` is
    left to default it follows the paper's ``ceil(n / shift)`` rule.
    The hash state equals the level-2 index, so the level-1 table needs
    only ``index_bits`` bits per entry.
    """

    def __init__(self, index_bits: int, order: int | None = None, shift: int = 5):
        if order is None:
            order = order_for_index_bits(index_bits, shift)
        super().__init__(index_bits, order)
        if shift * order < index_bits:
            raise ValueError(
                f"FS(R-{shift}) of order {order} is not incremental for "
                f"{index_bits} index bits (need shift*order >= index_bits); "
                f"use order >= {order_for_index_bits(index_bits, shift)}"
            )
        self.shift = shift
        # The fold width equals index_bits, so the table mask doubles as
        # the fold chunk mask; precomputing here keeps the per-record
        # step free of mask construction and range re-validation.
        self._fold_mask = self.mask

    def step(self, state: int, value: int) -> int:
        return ((state << self.shift)
                ^ _fold_masked(value, self.index_bits, self._fold_mask)) & self.mask

    def index(self, state: int) -> int:
        return state


class XorFoldHash(HistoryHash):
    """Plain XOR of the folded history values (FS with shift 0).

    Ignores the *order* of values inside the history window, which makes
    it noticeably worse than FS(R-5); kept as an ablation baseline.  It
    is not incrementally computable from an index alone, so the state
    packs the last ``order`` folded values (``index_bits`` bits each).
    """

    def __init__(self, index_bits: int, order: int):
        super().__init__(index_bits, order)
        self._fold_mask = self.mask
        self._window_mask = (1 << (index_bits * order)) - 1

    def step(self, state: int, value: int) -> int:
        return ((state << self.index_bits)
                | _fold_masked(value, self.index_bits, self._fold_mask)
                ) & self._window_mask

    def index(self, state: int) -> int:
        index = 0
        for age in range(self.order):
            index ^= (state >> (age * self.index_bits)) & self.mask
        return index


class ConcatHash(HistoryHash):
    """Concatenation of the raw history values, as in Figures 4 and 8.

    The paper's worked examples assume "the hashing function concatenates
    the values in the history".  The state packs the last ``order``
    *full 32-bit* values; the index is that concatenation reduced modulo
    the table size.  Exact (collision-free) when the values fit the
    per-slot budget of ``index_bits // order`` bits and the table is big
    enough, which the worked-example tests arrange.
    """

    def __init__(self, index_bits: int, order: int):
        super().__init__(index_bits, order)
        self._window_mask = (1 << (32 * order)) - 1
        self._slot_bits = max(1, index_bits // order)
        self._slot_mask = (1 << self._slot_bits) - 1

    def step(self, state: int, value: int) -> int:
        return ((state << 32) | (value & MASK32)) & self._window_mask

    def index(self, state: int) -> int:
        index = 0
        for age in range(self.order):
            slot = (state >> (age * 32)) & MASK32
            index = (index << self._slot_bits) | (slot & self._slot_mask)
        return index & self.mask


_HASH_KINDS = {
    "fs": FoldShiftHash,
    "xor": XorFoldHash,
    "concat": ConcatHash,
}


def make_hash(kind: str, index_bits: int, order: int | None = None, **kwargs) -> HistoryHash:
    """Factory for history hashes: kind in {'fs', 'xor', 'concat'}.

    ``'fs'`` accepts a ``shift`` keyword (5 reproduces the paper's
    FS(R-5)).  ``order`` defaults to the paper's coupling for 'fs' and
    must be given for the others.
    """
    try:
        cls = _HASH_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown hash kind {kind!r}; expected one of {sorted(_HASH_KINDS)}"
        ) from None
    if cls is FoldShiftHash:
        return cls(index_bits, order, **kwargs)
    if order is None:
        raise ValueError(f"hash kind {kind!r} requires an explicit order")
    return cls(index_bits, order, **kwargs)
