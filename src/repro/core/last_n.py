"""Last-n value predictor (Burtscher & Zorn, the paper's reference [2]).

Keeps the last *n* distinct values per entry, each guarded by a small
saturating counter; the prediction is the value with the highest
counter (most recently reinforced wins ties).  On update, a matching
slot's counter is bumped; otherwise the lowest-confidence slot is
evicted for the new value.

Included as an extra baseline: it covers alternating and small-set
patterns a last value predictor misses, without the stride predictor's
arithmetic -- useful context for where FCM/DFCM wins come from.
"""

from __future__ import annotations

from repro.core.base import ValuePredictor
from repro.core.spec import LastNSpec
from repro.core.types import MASK32

__all__ = ["LastNValuePredictor"]


class LastNValuePredictor(ValuePredictor):
    """Direct-mapped table of the last *n* values per entry.

    Parameters
    ----------
    entries:
        Table size (power of two).
    n:
        Values retained per entry (paper [2] explores up to 4).
    counter_bits:
        Width of the per-slot confidence counters.
    """

    def __init__(self, entries: int, n: int = 4, counter_bits: int = 2):
        self.spec = LastNSpec(entries, n, counter_bits)  # validates args
        self.entries = entries
        self.n = n
        self.counter_bits = counter_bits
        self._counter_max = (1 << counter_bits) - 1
        self._mask = entries - 1
        self._values = [[0] * n for _ in range(entries)]
        self._counters = [[0] * n for _ in range(entries)]
        # Recency stamps break counter ties toward the newest value.
        self._stamps = [[0] * n for _ in range(entries)]
        self._clock = 0
        self.name = self.spec.name

    def _best_slot(self, index: int) -> int:
        counters = self._counters[index]
        stamps = self._stamps[index]
        best = 0
        for slot in range(1, self.n):
            if (counters[slot], stamps[slot]) > (counters[best], stamps[best]):
                best = slot
        return best

    def predict(self, pc: int) -> int:
        index = (pc >> 2) & self._mask
        return self._values[index][self._best_slot(index)]

    def update(self, pc: int, value: int) -> None:
        index = (pc >> 2) & self._mask
        value &= MASK32
        self._clock += 1
        values = self._values[index]
        counters = self._counters[index]
        stamps = self._stamps[index]
        for slot in range(self.n):
            if values[slot] == value:
                if counters[slot] < self._counter_max:
                    counters[slot] += 1
                stamps[slot] = self._clock
                # Competing values decay, so a dominant value stays on
                # top even after every counter has saturated once.
                for other in range(self.n):
                    if other != slot and counters[other] > 0:
                        counters[other] -= 1
                return
        victim = 0
        for slot in range(1, self.n):
            if (counters[slot], stamps[slot]) < (counters[victim],
                                                 stamps[victim]):
                victim = slot
        values[victim] = value
        counters[victim] = 1
        stamps[victim] = self._clock

    def storage_bits(self) -> int:
        """n values + n counters per entry (recency stamps modelled as
        ceil(log2 n) bits each, the hardware equivalent of an LRU code)."""
        return self.spec.storage_bits()
