"""Value predictors and measurement instrumentation (the paper's core)."""

from repro.core.base import ValuePredictor
from repro.core.spec import (TableSpec, HashSpec, PredictorSpec,
                             LastValueSpec, LastNSpec, StrideSpec,
                             TwoDeltaStrideSpec, FCMSpec, DFCMSpec,
                             OracleHybridSpec, MetaHybridSpec, DelayedSpec,
                             spec_from_config, spec_from_cli)
from repro.core.last_value import LastValuePredictor
from repro.core.last_n import LastNValuePredictor
from repro.core.stride import StridePredictor, TwoDeltaStridePredictor
from repro.core.fcm import FCMPredictor
from repro.core.dfcm import DFCMPredictor
from repro.core.hybrid import OracleHybridPredictor, MetaHybridPredictor
from repro.core.delayed import DelayedUpdatePredictor
from repro.core.estimator import (ConfidentPredictor,
                                  CounterConfidencePredictor,
                                  TaggedFCMPredictor, TaggedDFCMPredictor,
                                  measure_confidence)

__all__ = [
    "ValuePredictor",
    "TableSpec",
    "HashSpec",
    "PredictorSpec",
    "LastValueSpec",
    "LastNSpec",
    "StrideSpec",
    "TwoDeltaStrideSpec",
    "FCMSpec",
    "DFCMSpec",
    "OracleHybridSpec",
    "MetaHybridSpec",
    "DelayedSpec",
    "spec_from_config",
    "spec_from_cli",
    "LastValuePredictor",
    "LastNValuePredictor",
    "StridePredictor",
    "TwoDeltaStridePredictor",
    "FCMPredictor",
    "DFCMPredictor",
    "OracleHybridPredictor",
    "MetaHybridPredictor",
    "DelayedUpdatePredictor",
    "ConfidentPredictor",
    "CounterConfidencePredictor",
    "TaggedFCMPredictor",
    "TaggedDFCMPredictor",
    "measure_confidence",
]
