"""The differential finite context method (DFCM) -- the paper's contribution.

DFCM is an FCM over *differences* (strides) between successive values
instead of the values themselves (paper section 3):

- level-1 entry: the instruction's last value plus a hashed history of
  the differences between its recent values;
- level-2 entry: the difference most likely to follow a given history
  of differences;
- prediction: ``last_value + L2[hash(stride history)]``;
- update: the new difference ``value - last`` is written to the level-2
  entry the prediction was read from, the hash is advanced with that
  difference, and the last value is replaced.

A stride pattern's difference history is constant, so the whole pattern
collapses onto a *single* level-2 entry (and all patterns with the same
stride share it), which is what frees level-2 capacity and cuts hash
aliasing -- the effect sections 2.4 and 4.2 of the paper quantify.

Section 4.4 variant: the level-2 table may store only the low
``stride_bits`` bits of each difference (sign-extended on use), trading
accuracy for table width.
"""

from __future__ import annotations

from repro.core.base import ValuePredictor
from repro.core.hashing import FoldShiftHash, HistoryHash
from repro.core.spec import DFCMSpec, HashSpec
from repro.core.types import MASK32, WORD_BITS, require_power_of_two

__all__ = ["DFCMPredictor"]


class DFCMPredictor(ValuePredictor):
    """Differential FCM predictor.

    Parameters
    ----------
    l1_entries, l2_entries:
        Table sizes (powers of two).
    hash_fn:
        Difference-history hash; defaults to the same FS(R-5) /
        coupled-order setup the paper uses for FCM ("we did not try to
        optimize the order and the hashing function for DFCM").
    stride_bits:
        Width of the stored level-2 differences, 1..32 (default 32).
        Narrower strides are sign-extended when predicting; paper
        section 4.4 measures 16 and 8 bits.
    """

    def __init__(self, l1_entries: int, l2_entries: int,
                 hash_fn: HistoryHash | None = None, stride_bits: int = 32):
        require_power_of_two(l1_entries, "DFCM level-1 size")
        require_power_of_two(l2_entries, "DFCM level-2 size")
        if not 1 <= stride_bits <= 32:
            raise ValueError(f"stride_bits must be in [1, 32], got {stride_bits}")
        index_bits = l2_entries.bit_length() - 1
        if hash_fn is None:
            hash_fn = FoldShiftHash(index_bits)
        elif hash_fn.index_bits != index_bits:
            raise ValueError(
                f"hash produces {hash_fn.index_bits}-bit indices but the "
                f"level-2 table needs {index_bits}-bit indices"
            )
        self.l1_entries = l1_entries
        self.l2_entries = l2_entries
        self.hash_fn = hash_fn
        self.order = hash_fn.order
        self.stride_bits = stride_bits
        self._l1_mask = l1_entries - 1
        self._last = [0] * l1_entries
        self._hist = [hash_fn.initial_state] * l1_entries
        self._l2 = [0] * l2_entries  # sign-extended 32-bit differences
        self._stride_mask = (1 << stride_bits) - 1
        self._stride_sign = 1 << (stride_bits - 1)
        # Declarative twin; None when the hash is a custom subclass the
        # spec layer cannot rebuild in another process.
        hash_spec = HashSpec.from_hash(hash_fn)
        self.spec = (DFCMSpec(l1_entries, l2_entries, hash_spec, stride_bits)
                     if hash_spec is not None else None)
        self.name = f"dfcm_l1={l1_entries}_l2={l2_entries}"
        if stride_bits != 32:
            self.name += f"_s{stride_bits}"

    def _store_stride(self, stride: int) -> int:
        """Truncate a 32-bit difference to stride_bits and sign-extend back.

        This models a narrow level-2 entry: what is added back at
        prediction time is the sign-extension of the stored low bits.
        """
        if self.stride_bits == 32:
            return stride & MASK32
        low = stride & self._stride_mask
        if low & self._stride_sign:
            low |= MASK32 ^ self._stride_mask
        return low

    def predict(self, pc: int) -> int:
        l1_index = (pc >> 2) & self._l1_mask
        stride = self._l2[self.hash_fn.index(self._hist[l1_index])]
        return (self._last[l1_index] + stride) & MASK32

    def update(self, pc: int, value: int) -> None:
        value &= MASK32
        l1_index = (pc >> 2) & self._l1_mask
        state = self._hist[l1_index]
        stride = (value - self._last[l1_index]) & MASK32
        self._l2[self.hash_fn.index(state)] = self._store_stride(stride)
        # The history hash is fed the *full* difference; only the stored
        # level-2 payload is truncated (section 4.4 varies storage, not
        # the context).
        self._hist[l1_index] = self.hash_fn.step(state, stride)
        self._last[l1_index] = value

    def storage_bits(self) -> int:
        """L1: last value (32) + hashed history per entry; L2: stride_bits.

        The extra 32-bit last value per level-1 entry is the storage
        penalty the paper's Pareto comparison (Figure 11(b)) charges
        DFCM for.
        """
        if self.spec is not None:
            return self.spec.storage_bits()
        return (self.l1_entries * (WORD_BITS + self.hash_fn.index_bits)
                + self.l2_entries * self.stride_bits)

    # -- introspection used by the occupancy/aliasing instrumentation --

    def l2_index(self, pc: int) -> int:
        """Level-2 index the next prediction for *pc* would use."""
        return self.hash_fn.index(self._hist[(pc >> 2) & self._l1_mask])

    def l1_index(self, pc: int) -> int:
        """Level-1 entry index for *pc*."""
        return (pc >> 2) & self._l1_mask

    def last_value(self, pc: int) -> int:
        """Last value currently recorded for *pc*'s level-1 entry."""
        return self._last[(pc >> 2) & self._l1_mask]
