"""MinC: a small C-subset compiler targeting R32 assembly.

MinC stands in for the paper's gcc toolchain: the SPECint95-like
workloads are written in MinC, compiled to R32 and executed by the VM
to produce value traces.  The language is integer-only (``int`` scalars
and one-dimensional ``int`` arrays) with functions, recursion, the
usual C operators and control flow, and three builtins
(``print_int``, ``print_char``, ``print_str``).
"""

from repro.lang.compiler import (CompileError, compile_source,
                                 compile_to_program)

__all__ = ["CompileError", "compile_source", "compile_to_program"]
