"""MinC semantic analysis.

Resolves every name, checks arities and array/scalar usage, lays out
function frames, and hands the code generator a :class:`Analysis`
object mapping AST nodes to storage.

Symbols
-------
- globals: scalars and arrays in the ``.data`` segment, addressed by
  label;
- params: one word each (arrays are passed as addresses), addressed
  relative to the frame pointer above the frame;
- locals: scalars and arrays inside the frame, addressed at
  non-negative frame-pointer offsets.  Block scoping is honoured; each
  declaration gets its own slot (no slot reuse between sibling scopes
  -- frames in these workloads are small).

MinC builtins: ``print_int(e)``, ``print_char(e)``, ``print_str("...")``
and ``exit(e)``.  String literals are only legal as the argument of
``print_str``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import ast
from repro.lang.errors import CompileError

__all__ = ["Analysis", "FunctionLayout", "Symbol", "analyze", "BUILTINS"]

BUILTINS = {"print_int": 1, "print_char": 1, "print_str": 1, "exit": 1}

_RESERVED = {"__start"} | set(BUILTINS)


@dataclass(frozen=True)
class Symbol:
    """Resolved storage for one name."""

    name: str
    kind: str               # 'global' | 'param' | 'local'
    is_array: bool
    offset: int = 0         # local: fp offset; param: argument index
    size: int = 1           # array element count (1 for scalars)

    @property
    def label(self) -> str:
        """Data-segment label (globals only)."""
        return f"g_{self.name}"


@dataclass
class FunctionLayout:
    """Frame and signature facts for one function."""

    name: str
    params: List[Symbol]
    locals_size: int = 0    # bytes of locals inside the frame

    @property
    def frame_size(self) -> int:
        """Locals plus the saved $ra / $fp pair."""
        return self.locals_size + 8

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class Analysis:
    """Everything the code generator needs beyond the AST itself."""

    globals: Dict[str, Symbol] = field(default_factory=dict)
    functions: Dict[str, FunctionLayout] = field(default_factory=dict)
    # id(VarRef | Index-base VarRef) -> Symbol
    resolutions: Dict[int, Symbol] = field(default_factory=dict)
    # id(DeclStmt) -> Symbol
    declarations: Dict[int, Symbol] = field(default_factory=dict)

    def resolve(self, node) -> Symbol:
        return self.resolutions[id(node)]


class _FunctionChecker:
    def __init__(self, analysis: Analysis, layout: FunctionLayout):
        self.analysis = analysis
        self.layout = layout
        self.scopes: List[Dict[str, Symbol]] = [
            {p.name: p for p in layout.params}]
        self.loop_depth = 0

    # -- scope helpers --

    def lookup(self, name: str, line: int) -> Symbol:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        symbol = self.analysis.globals.get(name)
        if symbol is None:
            raise CompileError(f"undeclared variable {name!r}", line)
        return symbol

    def declare_local(self, decl: ast.DeclStmt) -> Symbol:
        if decl.name in self.scopes[-1]:
            raise CompileError(
                f"duplicate declaration of {decl.name!r}", decl.line)
        size = decl.array_size or 1
        symbol = Symbol(decl.name, "local", decl.array_size is not None,
                        offset=self.layout.locals_size, size=size)
        self.layout.locals_size += 4 * size
        self.scopes[-1][decl.name] = symbol
        self.analysis.declarations[id(decl)] = symbol
        return symbol

    # -- statements --

    def check_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for statement in block.statements:
            self.check_statement(statement)
        self.scopes.pop()

    def check_statement(self, statement) -> None:
        if isinstance(statement, ast.Block):
            self.check_block(statement)
        elif isinstance(statement, ast.DeclStmt):
            self.declare_local(statement)
            if statement.initializer is not None:
                self.check_value(statement.initializer)
        elif isinstance(statement, ast.AssignStmt):
            self.check_lvalue(statement.target)
            self.check_value(statement.value)
        elif isinstance(statement, ast.ExprStmt):
            self.check_expr(statement.expr, as_value=False)
        elif isinstance(statement, ast.IfStmt):
            self.check_value(statement.condition)
            self.check_statement(statement.then_body)
            if statement.else_body is not None:
                self.check_statement(statement.else_body)
        elif isinstance(statement, ast.WhileStmt):
            self.check_value(statement.condition)
            self.loop_depth += 1
            self.check_statement(statement.body)
            self.loop_depth -= 1
        elif isinstance(statement, ast.ForStmt):
            if statement.init is not None:
                self.check_statement(statement.init)
            if statement.condition is not None:
                self.check_value(statement.condition)
            if statement.step is not None:
                self.check_statement(statement.step)
            self.loop_depth += 1
            self.check_statement(statement.body)
            self.loop_depth -= 1
        elif isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                self.check_value(statement.value)
        elif isinstance(statement, ast.BreakStmt):
            if self.loop_depth == 0:
                raise CompileError("break outside a loop", statement.line)
        elif isinstance(statement, ast.ContinueStmt):
            if self.loop_depth == 0:
                raise CompileError("continue outside a loop", statement.line)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(
                f"unknown statement {type(statement).__name__}", 0)

    # -- expressions --

    def check_lvalue(self, node) -> None:
        if isinstance(node, ast.VarRef):
            symbol = self.lookup(node.name, node.line)
            if symbol.is_array:
                raise CompileError(
                    f"cannot assign to array {node.name!r}", node.line)
            self.analysis.resolutions[id(node)] = symbol
        elif isinstance(node, ast.Index):
            self._check_index(node)
        else:  # pragma: no cover - parser enforces lvalue shape
            raise CompileError("not an lvalue", node.line)

    def check_value(self, node) -> None:
        self.check_expr(node, as_value=True)

    def _check_index(self, node: ast.Index) -> None:
        if not isinstance(node.base, ast.VarRef):
            raise CompileError("only named arrays can be indexed",
                               node.line)
        symbol = self.lookup(node.base.name, node.base.line)
        if not symbol.is_array:
            raise CompileError(
                f"{node.base.name!r} is not an array", node.line)
        self.analysis.resolutions[id(node.base)] = symbol
        self.check_value(node.index)

    def check_expr(self, node, as_value: bool) -> None:
        if isinstance(node, ast.IntLit):
            return
        if isinstance(node, ast.StrLit):
            raise CompileError(
                "string literals are only valid in print_str(...)",
                node.line)
        if isinstance(node, ast.VarRef):
            symbol = self.lookup(node.name, node.line)
            if symbol.is_array:
                raise CompileError(
                    f"array {node.name!r} used as a value "
                    "(arrays may only be indexed or passed to functions)",
                    node.line)
            self.analysis.resolutions[id(node)] = symbol
            return
        if isinstance(node, ast.Index):
            self._check_index(node)
            return
        if isinstance(node, ast.Unary):
            self.check_value(node.operand)
            return
        if isinstance(node, ast.Binary):
            self.check_value(node.left)
            self.check_value(node.right)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, as_value)
            return
        raise CompileError(  # pragma: no cover
            f"unknown expression {type(node).__name__}", 0)

    def _check_call(self, node: ast.Call, as_value: bool) -> None:
        if node.name in BUILTINS:
            self._check_builtin(node, as_value)
            return
        layout = self.analysis.functions.get(node.name)
        if layout is None:
            raise CompileError(f"call to undeclared function {node.name!r}",
                               node.line)
        if len(node.args) != layout.arity:
            raise CompileError(
                f"{node.name!r} expects {layout.arity} argument(s), "
                f"got {len(node.args)}", node.line)
        for arg, param in zip(node.args, layout.params):
            if param.is_array:
                if not isinstance(arg, ast.VarRef):
                    raise CompileError(
                        f"argument {param.name!r} of {node.name!r} must be "
                        "an array name", arg.line)
                symbol = self.lookup(arg.name, arg.line)
                if not symbol.is_array:
                    raise CompileError(
                        f"{arg.name!r} is not an array", arg.line)
                self.analysis.resolutions[id(arg)] = symbol
            else:
                self.check_value(arg)

    def _check_builtin(self, node: ast.Call, as_value: bool) -> None:
        if as_value:
            raise CompileError(
                f"builtin {node.name!r} returns no value", node.line)
        if len(node.args) != BUILTINS[node.name]:
            raise CompileError(
                f"{node.name!r} expects {BUILTINS[node.name]} argument(s)",
                node.line)
        argument = node.args[0]
        if node.name == "print_str":
            if not isinstance(argument, ast.StrLit):
                raise CompileError(
                    "print_str takes a string literal", node.line)
        else:
            self.check_value(argument)


def analyze(program: ast.Program) -> Analysis:
    """Run all semantic checks; returns the resolved analysis."""
    analysis = Analysis()

    for global_var in program.globals:
        _check_fresh_name(global_var.name, analysis, global_var.line)
        analysis.globals[global_var.name] = Symbol(
            global_var.name, "global",
            global_var.array_size is not None,
            size=global_var.array_size or 1)

    # Collect signatures first so calls can be forward and recursive.
    for function in program.functions:
        _check_fresh_name(function.name, analysis, function.line)
        params = []
        seen = set()
        for index, param in enumerate(function.params):
            if param.name in seen:
                raise CompileError(
                    f"duplicate parameter {param.name!r}", param.line)
            seen.add(param.name)
            params.append(Symbol(param.name, "param", param.is_array,
                                 offset=index))
        analysis.functions[function.name] = FunctionLayout(
            function.name, params)

    if "main" not in analysis.functions:
        raise CompileError("no main() function defined", 0)
    if analysis.functions["main"].arity != 0:
        main_fn = next(f for f in program.functions if f.name == "main")
        raise CompileError("main() must take no parameters", main_fn.line)

    for function in program.functions:
        checker = _FunctionChecker(analysis,
                                   analysis.functions[function.name])
        checker.check_block(function.body)

    return analysis


def _check_fresh_name(name: str, analysis: Analysis, line: int) -> None:
    if name in _RESERVED:
        raise CompileError(f"{name!r} is a reserved name", line)
    if name in analysis.globals or name in analysis.functions:
        raise CompileError(f"duplicate definition of {name!r}", line)
