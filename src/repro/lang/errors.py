"""MinC compilation errors."""

from __future__ import annotations

__all__ = ["CompileError"]


class CompileError(ValueError):
    """Any lexical, syntactic or semantic MinC error, with line info."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line
