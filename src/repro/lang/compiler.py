"""MinC compiler entry points."""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.lang.codegen import generate
from repro.lang.errors import CompileError
from repro.lang.optimizer import optimize_assembly
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = ["CompileError", "compile_source", "compile_to_program"]


def compile_source(source: str, optimize: int = 0) -> str:
    """Compile MinC source to R32 assembly text.

    Optimisation levels:

    - ``0`` -- plain stack-discipline output (every scalar in memory);
    - ``1`` -- plus the peephole pass (store-load forwarding, dead-code
      elimination, immediate fusion -- :mod:`repro.lang.optimizer`);
    - ``2`` -- plus register allocation: hot scalars promoted to the
      callee-saved registers ``s0..s5`` (the gcc ``-O2``-like mode).
    """
    program = parse(source)
    analysis = analyze(program)
    assembly = generate(program, analysis, regalloc=optimize >= 2)
    if optimize >= 1:
        assembly, _ = optimize_assembly(assembly)
    return assembly


def compile_to_program(source: str, optimize: int = 0) -> Program:
    """Compile MinC source all the way to a loadable program image."""
    return assemble(compile_source(source, optimize=optimize))
