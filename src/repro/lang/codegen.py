"""MinC code generation to R32 assembly.

Strategy: a *virtual register stack*.  Expression results live in the
temporary registers ``t0..t9``; the expression at nesting depth ``d``
evaluates into ``t<d>``.  When an expression is deeper than the pool,
the partial result is spilled to the real stack around the deeper
operand (``$k0`` is the reload scratch; ``$k1``/``$at`` stay free for
the assembler's own pseudo expansions).

Frame layout (word-aligned, grows down)::

    caller: ... [argN-1] ... [arg1] [arg0]   <- pushed left-to-right
            jal f
    callee: [saved ra] [saved fp] [locals...]  <- fp = sp after prologue

    local  at  fp + offset                  (0 <= offset < locals_size)
    saved fp   fp + locals_size
    saved ra   fp + locals_size + 4
    arg i  at  fp + frame_size + 4*(arity-1-i)

Calls save the live prefix of the temp pool, push arguments
left-to-right, ``jal``, pop arguments, restore temps and move ``$v0``
into the result register.  Builtins lower to syscalls (which preserve
all registers except ``$v0`` in this VM).

The generated code keeps scalar locals in memory and re-loads them on
every use -- like ``gcc -O0`` rather than the paper's ``-O2``.  The
value-pattern taxonomy the paper relies on is unchanged (induction
variables still produce stride patterns, ``slt`` results are still
almost constant); only the pattern *mix* shifts towards loads, which
EXPERIMENTS.md discusses.

With ``regalloc=True`` (the compiler's -O2 mode) the most-used scalar
locals and parameters of each function are promoted to the
callee-saved registers ``s0..s5``: parameters are loaded once in the
prologue, reads and writes become register moves, and the used
s-registers are saved/restored in a frame extension.  This is sound
because MinC has no address-of operator -- a promoted scalar can never
be reached through memory -- and because every function preserves the
s-registers it touches, so promoted values survive calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.sema import Analysis, FunctionLayout, Symbol

__all__ = ["generate"]

_POOL = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9")
_SCRATCH = "k0"
_SAVED_REGS = ("s0", "s1", "s2", "s3", "s4", "s5")

_SYSCALL_CODES = {"print_int": 1, "print_str": 4, "exit": 10,
                  "print_char": 11}

_SIMPLE_BINOPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "sllv", ">>": "srav",
}

_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t",
                   "\r": "\\r", "\0": "\\0"}


class _CodeGen:
    def __init__(self, program: ast.Program, analysis: Analysis,
                 regalloc: bool = False):
        self.program = program
        self.analysis = analysis
        self.regalloc = regalloc
        self.lines: List[str] = []
        self.strings: Dict[str, str] = {}
        self.label_counter = 0
        self.layout: Optional[FunctionLayout] = None
        self.exit_label = ""
        self.loop_stack: List[tuple] = []  # (break_label, continue_label)
        self._sregs: Dict[Symbol, str] = {}
        self._frame = 0

    # -- emission helpers --

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{hint}{self.label_counter}"

    def string_label(self, text: str) -> str:
        if text not in self.strings:
            self.strings[text] = f".Lstr{len(self.strings)}"
        return self.strings[text]

    def push(self, reg: str) -> None:
        self.emit("addi sp, sp, -4")
        self.emit(f"sw {reg}, 0(sp)")

    def pop(self, reg: str) -> None:
        self.emit(f"lw {reg}, 0(sp)")
        self.emit("addi sp, sp, 4")

    # -- top level --

    def generate(self) -> str:
        self.lines.append(".text")
        self.emit_label("__start")
        self.emit("jal main")
        self.emit("move a0, v0")
        self.emit("li v0, 10")
        self.emit("syscall")
        for function in self.program.functions:
            self.gen_function(function)
        self._emit_data()
        return "\n".join(self.lines) + "\n"

    def _emit_data(self) -> None:
        self.lines.append("")
        self.lines.append(".data")
        for global_var in self.program.globals:
            symbol = self.analysis.globals[global_var.name]
            self.emit_label(symbol.label)
            if global_var.array_size is None:
                self.emit(f".word {global_var.initializer or 0}")
            elif global_var.array_init:
                values = ", ".join(str(v) for v in global_var.array_init)
                self.emit(f".word {values}")
                remaining = global_var.array_size - len(global_var.array_init)
                if remaining:
                    self.emit(f".space {4 * remaining}")
            else:
                self.emit(f".space {4 * global_var.array_size}")
        for text, label in self.strings.items():
            escaped = "".join(_STRING_ESCAPES.get(ch, ch) for ch in text)
            self.emit_label(label)
            self.emit(f'.asciiz "{escaped}"')

    # -- functions --

    def gen_function(self, function: ast.Function) -> None:
        self.layout = self.analysis.functions[function.name]
        self.exit_label = self.new_label("exit_")
        self._sregs = (self._promote_scalars(function) if self.regalloc
                       else {})
        save_area = 4 * len(self._sregs)
        frame = self.layout.frame_size + save_area
        self._frame = frame
        self.lines.append("")
        self.emit_label(function.name)
        self.emit(f"addi sp, sp, -{frame}")
        self.emit(f"sw ra, {frame - 4}(sp)")
        self.emit(f"sw fp, {frame - 8}(sp)")
        self.emit("move fp, sp")
        # Save-area slots sit between the locals and the saved fp/ra.
        save_base = self.layout.locals_size
        for index, reg in enumerate(sorted(set(self._sregs.values()))):
            self.emit(f"sw {reg}, {save_base + 4 * index}(fp)")
        # Promoted parameters are loaded from their stack slots once.
        for symbol, reg in self._sregs.items():
            if symbol.kind == "param":
                self.emit(f"lw {reg}, {self._arg_offset(symbol.offset)}(fp)")
        self.gen_block(function.body)
        self.emit("li v0, 0")  # default return value on fall-through
        self.emit_label(self.exit_label)
        for index, reg in enumerate(sorted(set(self._sregs.values()))):
            self.emit(f"lw {reg}, {save_base + 4 * index}(fp)")
        self.emit(f"lw ra, {frame - 4}(sp)")
        self.emit(f"lw fp, {frame - 8}(sp)")
        self.emit(f"addi sp, sp, {frame}")
        self.emit("jr ra")

    def _promote_scalars(self, function: ast.Function) -> Dict[Symbol, str]:
        """Pick the most-used scalar locals/params for ``s0..s5``.

        Sound because MinC scalars cannot be address-taken, and every
        function saves/restores the s-registers it uses (so promoted
        values survive calls).  Array *parameters* qualify too -- their
        slot holds an address that MinC cannot reassign.
        """
        counts: Dict[Symbol, int] = {}

        def credit(symbol: Optional[Symbol], weight: int = 1) -> None:
            if symbol is None or symbol.kind == "global":
                return
            if symbol.is_array and symbol.kind != "param":
                return  # in-frame arrays stay addressable memory
            counts[symbol] = counts.get(symbol, 0) + weight

        def walk(node) -> None:
            if isinstance(node, ast.VarRef):
                credit(self.analysis.resolutions.get(id(node)))
                return
            if isinstance(node, ast.DeclStmt):
                credit(self.analysis.declarations.get(id(node)))
                if node.initializer is not None:
                    walk(node.initializer)
                return
            for field in vars(node).values():
                if isinstance(field, list):
                    for item in field:
                        if hasattr(item, "line"):
                            walk(item)
                elif hasattr(field, "line"):
                    walk(field)

        walk(function.body)
        # Promotion must beat its own overhead (save + restore, plus
        # the prologue load for parameters); below ~4 static uses the
        # frame slot is cheaper, especially for small leaf functions.
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0].name))
        return {symbol: _SAVED_REGS[i]
                for i, (symbol, count) in enumerate(ranked[:len(_SAVED_REGS)])
                if count >= 4}

    def _arg_offset(self, index: int) -> int:
        """fp-relative offset of argument *index* (left-to-right push)."""
        return self._frame + 4 * (self.layout.arity - 1 - index)

    # -- statements --

    def gen_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self.gen_statement(statement)

    def gen_statement(self, statement) -> None:
        if isinstance(statement, ast.Block):
            self.gen_block(statement)
        elif isinstance(statement, ast.DeclStmt):
            if statement.initializer is not None:
                symbol = self.analysis.declarations[id(statement)]
                self.gen_expr(statement.initializer, 0)
                self._store_scalar(symbol, "t0")
        elif isinstance(statement, ast.AssignStmt):
            self.gen_assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            self.gen_expr_statement(statement.expr)
        elif isinstance(statement, ast.IfStmt):
            self.gen_if(statement)
        elif isinstance(statement, ast.WhileStmt):
            self.gen_while(statement)
        elif isinstance(statement, ast.ForStmt):
            self.gen_for(statement)
        elif isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                self.gen_expr(statement.value, 0)
                self.emit("move v0, t0")
            self.emit(f"b {self.exit_label}")
        elif isinstance(statement, ast.BreakStmt):
            self.emit(f"b {self.loop_stack[-1][0]}")
        elif isinstance(statement, ast.ContinueStmt):
            self.emit(f"b {self.loop_stack[-1][1]}")
        else:  # pragma: no cover - sema rejects everything else
            raise CompileError(
                f"cannot generate {type(statement).__name__}", 0)

    def gen_assign(self, statement: ast.AssignStmt) -> None:
        target = statement.target
        if isinstance(target, ast.VarRef):
            symbol = self.analysis.resolve(target)
            self.gen_expr(statement.value, 0)
            self._store_scalar(symbol, "t0")
        else:  # Index
            self.gen_expr(statement.value, 0)
            self.gen_element_address(target, 1)
            self.emit(f"sw t0, 0({_POOL[1]})")

    def _store_scalar(self, symbol: Symbol, reg: str) -> None:
        sreg = self._sregs.get(symbol)
        if sreg is not None:
            self.emit(f"move {sreg}, {reg}")
        elif symbol.kind == "local":
            self.emit(f"sw {reg}, {symbol.offset}(fp)")
        elif symbol.kind == "param":
            self.emit(f"sw {reg}, {self._arg_offset(symbol.offset)}(fp)")
        else:
            self.emit(f"la {_SCRATCH}, {symbol.label}")
            self.emit(f"sw {reg}, 0({_SCRATCH})")

    def gen_expr_statement(self, expr) -> None:
        if isinstance(expr, ast.Call) and expr.name in _SYSCALL_CODES:
            self.gen_builtin(expr)
        else:
            self.gen_expr(expr, 0)

    def gen_builtin(self, call: ast.Call) -> None:
        if call.name == "print_str":
            label = self.string_label(call.args[0].value)
            self.emit(f"la a0, {label}")
        else:
            self.gen_expr(call.args[0], 0)
            self.emit("move a0, t0")
        self.emit(f"li v0, {_SYSCALL_CODES[call.name]}")
        self.emit("syscall")

    def gen_if(self, statement: ast.IfStmt) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self.gen_expr(statement.condition, 0)
        self.emit(f"beqz t0, {else_label}")
        self.gen_statement(statement.then_body)
        if statement.else_body is not None:
            self.emit(f"b {end_label}")
            self.emit_label(else_label)
            self.gen_statement(statement.else_body)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def gen_while(self, statement: ast.WhileStmt) -> None:
        cond_label = self.new_label("while")
        end_label = self.new_label("endwhile")
        self.emit_label(cond_label)
        self.gen_expr(statement.condition, 0)
        self.emit(f"beqz t0, {end_label}")
        self.loop_stack.append((end_label, cond_label))
        self.gen_statement(statement.body)
        self.loop_stack.pop()
        self.emit(f"b {cond_label}")
        self.emit_label(end_label)

    def gen_for(self, statement: ast.ForStmt) -> None:
        cond_label = self.new_label("for")
        step_label = self.new_label("forstep")
        end_label = self.new_label("endfor")
        if statement.init is not None:
            self.gen_statement(statement.init)
        self.emit_label(cond_label)
        if statement.condition is not None:
            self.gen_expr(statement.condition, 0)
            self.emit(f"beqz t0, {end_label}")
        self.loop_stack.append((end_label, step_label))
        self.gen_statement(statement.body)
        self.loop_stack.pop()
        self.emit_label(step_label)
        if statement.step is not None:
            self.gen_statement(statement.step)
        self.emit(f"b {cond_label}")
        self.emit_label(end_label)

    # -- expressions --

    def gen_expr(self, node, depth: int) -> None:
        """Evaluate *node* into ``_POOL[depth]``."""
        reg = _POOL[depth]
        if isinstance(node, ast.IntLit):
            self.emit(f"li {reg}, {node.value & 0xFFFFFFFF}")
        elif isinstance(node, ast.VarRef):
            symbol = self.analysis.resolve(node)
            sreg = self._sregs.get(symbol)
            if sreg is not None:
                self.emit(f"move {reg}, {sreg}")
            elif symbol.kind == "local":
                self.emit(f"lw {reg}, {symbol.offset}(fp)")
            elif symbol.kind == "param":
                self.emit(f"lw {reg}, {self._arg_offset(symbol.offset)}(fp)")
            else:
                self.emit(f"la {reg}, {symbol.label}")
                self.emit(f"lw {reg}, 0({reg})")
        elif isinstance(node, ast.Index):
            self.gen_element_address(node, depth)
            self.emit(f"lw {reg}, 0({reg})")
        elif isinstance(node, ast.Unary):
            self.gen_expr(node.operand, depth)
            if node.op == "-":
                self.emit(f"sub {reg}, zero, {reg}")
            elif node.op == "!":
                self.emit(f"sltiu {reg}, {reg}, 1")
            else:  # '~'
                self.emit(f"nor {reg}, {reg}, zero")
        elif isinstance(node, ast.Binary):
            self.gen_binary(node, depth)
        elif isinstance(node, ast.Call):
            self.gen_call(node, depth)
        else:  # pragma: no cover - sema rejects StrLit here
            raise CompileError(
                f"cannot generate {type(node).__name__}", 0)

    def gen_array_base(self, symbol: Symbol, depth: int) -> None:
        """Address of an array's first element into ``_POOL[depth]``."""
        reg = _POOL[depth]
        if symbol.kind == "global":
            self.emit(f"la {reg}, {symbol.label}")
        elif symbol.kind == "local":
            self.emit(f"addi {reg}, fp, {symbol.offset}")
        else:  # array parameter: the argument slot holds the address
            sreg = self._sregs.get(symbol)
            if sreg is not None:
                self.emit(f"move {reg}, {sreg}")
            else:
                self.emit(f"lw {reg}, {self._arg_offset(symbol.offset)}(fp)")

    def gen_element_address(self, node: ast.Index, depth: int) -> None:
        """Address of ``base[index]`` into ``_POOL[depth]``."""
        reg = _POOL[depth]
        symbol = self.analysis.resolve(node.base)
        self.gen_array_base(symbol, depth)
        if depth + 1 < len(_POOL):
            index_reg = _POOL[depth + 1]
            self.gen_expr(node.index, depth + 1)
            self.emit(f"sll {_SCRATCH}, {index_reg}, 2")
            self.emit(f"add {reg}, {reg}, {_SCRATCH}")
        else:
            self.push(reg)
            self.gen_expr(node.index, depth)
            self.emit(f"sll {_SCRATCH}, {reg}, 2")
            self.pop(reg)
            self.emit(f"add {reg}, {reg}, {_SCRATCH}")

    def gen_binary(self, node: ast.Binary, depth: int) -> None:
        reg = _POOL[depth]
        if node.op in ("&&", "||"):
            self._gen_short_circuit(node, depth)
            return
        # Immediate forms for the common induction-variable idioms.
        if isinstance(node.right, ast.IntLit):
            imm = node.right.value
            if node.op == "+" and -0x8000 <= imm < 0x8000:
                self.gen_expr(node.left, depth)
                self.emit(f"addi {reg}, {reg}, {imm}")
                return
            if node.op == "-" and -0x7FFF <= imm < 0x8000:
                self.gen_expr(node.left, depth)
                self.emit(f"addi {reg}, {reg}, {-imm}")
                return
            if node.op in ("<<", ">>") and 0 <= imm < 32:
                self.gen_expr(node.left, depth)
                shift_op = "sll" if node.op == "<<" else "sra"
                self.emit(f"{shift_op} {reg}, {reg}, {imm}")
                return
        self.gen_expr(node.left, depth)
        if depth + 1 < len(_POOL):
            right_reg = _POOL[depth + 1]
            self.gen_expr(node.right, depth + 1)
            self._emit_binop(node.op, reg, reg, right_reg)
        else:
            self.push(reg)
            self.gen_expr(node.right, depth)
            self.pop(_SCRATCH)
            self._emit_binop(node.op, reg, _SCRATCH, reg)

    def _emit_binop(self, op: str, dest: str, left: str, right: str) -> None:
        if op in _SIMPLE_BINOPS:
            self.emit(f"{_SIMPLE_BINOPS[op]} {dest}, {left}, {right}")
        elif op == "<":
            self.emit(f"slt {dest}, {left}, {right}")
        elif op == ">":
            self.emit(f"slt {dest}, {right}, {left}")
        elif op == "<=":
            self.emit(f"slt {dest}, {right}, {left}")
            self.emit(f"xori {dest}, {dest}, 1")
        elif op == ">=":
            self.emit(f"slt {dest}, {left}, {right}")
            self.emit(f"xori {dest}, {dest}, 1")
        elif op == "==":
            self.emit(f"sub {dest}, {left}, {right}")
            self.emit(f"sltiu {dest}, {dest}, 1")
        elif op == "!=":
            self.emit(f"sub {dest}, {left}, {right}")
            self.emit(f"sltu {dest}, zero, {dest}")
        else:  # pragma: no cover - parser's operator set is closed
            raise CompileError(f"unknown operator {op!r}", 0)

    def _gen_short_circuit(self, node: ast.Binary, depth: int) -> None:
        reg = _POOL[depth]
        end_label = self.new_label("sc_end")
        if node.op == "&&":
            short_label = self.new_label("sc_false")
            self.gen_expr(node.left, depth)
            self.emit(f"beqz {reg}, {short_label}")
            self.gen_expr(node.right, depth)
            self.emit(f"beqz {reg}, {short_label}")
            self.emit(f"li {reg}, 1")
            self.emit(f"b {end_label}")
            self.emit_label(short_label)
            self.emit(f"li {reg}, 0")
        else:
            short_label = self.new_label("sc_true")
            self.gen_expr(node.left, depth)
            self.emit(f"bnez {reg}, {short_label}")
            self.gen_expr(node.right, depth)
            self.emit(f"bnez {reg}, {short_label}")
            self.emit(f"li {reg}, 0")
            self.emit(f"b {end_label}")
            self.emit_label(short_label)
            self.emit(f"li {reg}, 1")
        self.emit_label(end_label)

    def gen_call(self, node: ast.Call, depth: int) -> None:
        layout = self.analysis.functions[node.name]
        # Save the live prefix of the temp pool.
        for live in range(depth):
            self.push(_POOL[live])
        # Arguments: evaluate left-to-right at depth 0 (live temps are
        # saved, so the whole pool is free), pushing each immediately.
        for arg, param in zip(node.args, layout.params):
            if param.is_array:
                self.gen_array_base(self.analysis.resolve(arg), 0)
            else:
                self.gen_expr(arg, 0)
            self.push("t0")
        self.emit(f"jal {node.name}")
        if node.args:
            self.emit(f"addi sp, sp, {4 * len(node.args)}")
        for live in reversed(range(depth)):
            self.pop(_POOL[live])
        self.emit(f"move {_POOL[depth]}, v0")


def generate(program: ast.Program, analysis: Analysis,
             regalloc: bool = False) -> str:
    """Generate R32 assembly for an analysed MinC program.

    ``regalloc=True`` promotes hot scalars to ``s0..s5`` (the -O2
    mode); the default keeps every scalar in its frame slot (-O0).
    """
    return _CodeGen(program, analysis, regalloc=regalloc).generate()
