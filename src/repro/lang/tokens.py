"""MinC token definitions."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "SYMBOLS"]

KEYWORDS = frozenset(
    {"int", "void", "if", "else", "while", "for", "return",
     "break", "continue"})

# Multi-character symbols first so the lexer can match greedily.
SYMBOLS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",",
)


@dataclass(frozen=True)
class Token:
    """One MinC token.

    ``kind`` is one of: ``'int_lit'``, ``'string_lit'``, ``'ident'``,
    ``'keyword'``, ``'symbol'``, ``'eof'``.  ``value`` holds the decoded
    literal value / identifier text / symbol spelling.
    """

    kind: str
    value: object
    line: int

    def is_symbol(self, spelling: str) -> bool:
        return self.kind == "symbol" and self.value == spelling

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        if self.kind == "eof":
            return "end of input"
        return repr(self.value)
