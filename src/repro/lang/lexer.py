"""MinC lexical analysis."""

from __future__ import annotations

from typing import List

from repro.lang.errors import CompileError
from repro.lang.tokens import KEYWORDS, SYMBOLS, Token

__all__ = ["tokenize"]

_CHAR_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> List[Token]:
    """Turn MinC source into a token list ending with an 'eof' token."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                tokens.append(Token("int_lit", int(source[start:i], 16), line))
            else:
                while i < n and source[i].isdigit():
                    i += 1
                if i < n and (source[i].isalpha() or source[i] == "_"):
                    raise CompileError(
                        f"bad numeric literal {source[start:i + 1]!r}", line)
                tokens.append(Token("int_lit", int(source[start:i]), line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        if ch == "'":
            value, i = _char_literal(source, i, line)
            tokens.append(Token("int_lit", value, line))
            continue
        if ch == '"':
            value, i, line = _string_literal(source, i, line)
            tokens.append(Token("string_lit", value, line))
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, line))
                i += len(symbol)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens


def _char_literal(source: str, i: int, line: int):
    """Parse a character literal starting at source[i] == \"'\"."""
    i += 1
    if i >= len(source):
        raise CompileError("unterminated character literal", line)
    if source[i] == "\\":
        if i + 1 >= len(source):
            raise CompileError("dangling escape", line)
        try:
            value = _CHAR_ESCAPES[source[i + 1]]
        except KeyError:
            raise CompileError(f"unknown escape \\{source[i + 1]}", line) from None
        i += 2
    else:
        value = ord(source[i])
        i += 1
    if i >= len(source) or source[i] != "'":
        raise CompileError("unterminated character literal", line)
    return value, i + 1


def _string_literal(source: str, i: int, line: int):
    """Parse a string literal starting at source[i] == '\"'."""
    i += 1
    chars: List[str] = []
    while i < len(source):
        ch = source[i]
        if ch == '"':
            return "".join(chars), i + 1, line
        if ch == "\n":
            raise CompileError("newline in string literal", line)
        if ch == "\\":
            if i + 1 >= len(source):
                break
            try:
                chars.append(chr(_CHAR_ESCAPES[source[i + 1]]))
            except KeyError:
                raise CompileError(
                    f"unknown escape \\{source[i + 1]}", line) from None
            i += 2
            continue
        chars.append(ch)
        i += 1
    raise CompileError("unterminated string literal", line)
