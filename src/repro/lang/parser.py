"""MinC recursive-descent parser with precedence climbing.

Grammar sketch::

    program     := (global_var | function)*
    global_var  := 'int' ident ('[' int_lit ']')? ('=' const_init)? ';'
    const_init  := ('-')? int_lit | '{' int_lit (',' int_lit)* '}'
    function    := ('int'|'void') ident '(' params? ')' block
    params      := param (',' param)*
    param       := 'int' ident ('[' ']')?
    block       := '{' statement* '}'
    statement   := decl | assign_or_expr ';' | if | while | for
                 | 'return' expr? ';' | 'break' ';' | 'continue' ';'
                 | block
    decl        := 'int' ident ('[' int_lit ']')? ('=' expr)? ';'
    for         := 'for' '(' simple? ';' expr? ';' simple? ')' statement
    simple      := assignment | expression           (no declarations)

Binary operator precedence (low to high)::

    || && | ^ & (== !=) (< <= > >=) (<< >>) (+ -) (* / %)
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token

__all__ = ["parse"]

# Precedence table: operator -> binding level (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing --

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check_symbol(self, spelling: str) -> bool:
        return self.current.is_symbol(spelling)

    def accept_symbol(self, spelling: str) -> bool:
        if self.check_symbol(spelling):
            self.advance()
            return True
        return False

    def expect_symbol(self, spelling: str) -> Token:
        if not self.check_symbol(spelling):
            raise CompileError(
                f"expected {spelling!r}, got {self.current}",
                self.current.line)
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise CompileError(
                f"expected {word!r}, got {self.current}", self.current.line)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise CompileError(
                f"expected an identifier, got {self.current}",
                self.current.line)
        return self.advance()

    def expect_int(self) -> Token:
        if self.current.kind != "int_lit":
            raise CompileError(
                f"expected an integer literal, got {self.current}",
                self.current.line)
        return self.advance()

    # -- top level --

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            if not (self.current.is_keyword("int")
                    or self.current.is_keyword("void")):
                raise CompileError(
                    f"expected a declaration, got {self.current}",
                    self.current.line)
            returns_void = self.current.value == "void"
            self.advance()
            name = self.expect_ident()
            if self.check_symbol("("):
                program.functions.append(self._function(name))
            elif returns_void:
                raise CompileError("global variables must be int",
                                   name.line)
            else:
                program.globals.append(self._global_var(name))
        return program

    def _global_var(self, name: Token) -> ast.GlobalVar:
        array_size = None
        initializer = None
        array_init = None
        if self.accept_symbol("["):
            array_size = self.expect_int().value
            self.expect_symbol("]")
            if array_size <= 0:
                raise CompileError(
                    f"array {name.value!r} must have positive size",
                    name.line)
        if self.accept_symbol("="):
            if array_size is None:
                initializer = self._const_int()
            else:
                self.expect_symbol("{")
                array_init = [self._const_int()]
                while self.accept_symbol(","):
                    array_init.append(self._const_int())
                self.expect_symbol("}")
                if len(array_init) > array_size:
                    raise CompileError(
                        f"too many initialisers for {name.value!r}",
                        name.line)
        self.expect_symbol(";")
        return ast.GlobalVar(name.value, array_size, initializer,
                             array_init, name.line)

    def _const_int(self) -> int:
        negative = self.accept_symbol("-")
        value = self.expect_int().value
        return -value if negative else value

    def _function(self, name: Token) -> ast.Function:
        self.expect_symbol("(")
        params: List[ast.Param] = []
        if not self.check_symbol(")"):
            while True:
                if self.current.is_keyword("void") and not params:
                    # int f(void)
                    self.advance()
                    break
                self.expect_keyword("int")
                pname = self.expect_ident()
                is_array = False
                if self.accept_symbol("["):
                    self.expect_symbol("]")
                    is_array = True
                params.append(ast.Param(pname.value, is_array, pname.line))
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        body = self._block()
        return ast.Function(name.value, params, body, name.line)

    # -- statements --

    def _block(self) -> ast.Block:
        start = self.expect_symbol("{")
        statements: List[ast.Stmt] = []
        while not self.check_symbol("}"):
            if self.current.kind == "eof":
                raise CompileError("unterminated block", start.line)
            statements.append(self._statement())
        self.expect_symbol("}")
        return ast.Block(statements, start.line)

    def _statement(self) -> ast.Stmt:
        token = self.current
        if token.is_keyword("int"):
            return self._declaration()
        if token.is_keyword("if"):
            return self._if()
        if token.is_keyword("while"):
            return self._while()
        if token.is_keyword("for"):
            return self._for()
        if token.is_keyword("return"):
            self.advance()
            value = None if self.check_symbol(";") else self._expression()
            self.expect_symbol(";")
            return ast.ReturnStmt(value, token.line)
        if token.is_keyword("break"):
            self.advance()
            self.expect_symbol(";")
            return ast.BreakStmt(token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_symbol(";")
            return ast.ContinueStmt(token.line)
        if token.is_symbol("{"):
            return self._block()
        statement = self._simple_statement()
        self.expect_symbol(";")
        return statement

    def _declaration(self) -> ast.DeclStmt:
        self.expect_keyword("int")
        name = self.expect_ident()
        array_size = None
        initializer = None
        if self.accept_symbol("["):
            array_size = self.expect_int().value
            self.expect_symbol("]")
            if array_size <= 0:
                raise CompileError(
                    f"array {name.value!r} must have positive size",
                    name.line)
        if self.accept_symbol("="):
            if array_size is not None:
                raise CompileError(
                    "local array initialisers are not supported", name.line)
            initializer = self._expression()
        self.expect_symbol(";")
        return ast.DeclStmt(name.value, array_size, initializer, name.line)

    def _simple_statement(self) -> ast.Stmt:
        """Assignment or bare expression (used in for-headers too)."""
        expr = self._expression()
        if self.accept_symbol("="):
            if not isinstance(expr, (ast.VarRef, ast.Index)):
                raise CompileError("target of assignment is not an lvalue",
                                   expr.line)
            value = self._expression()
            return ast.AssignStmt(expr, value, expr.line)
        return ast.ExprStmt(expr, expr.line)

    def _if(self) -> ast.IfStmt:
        token = self.expect_keyword("if")
        self.expect_symbol("(")
        condition = self._expression()
        self.expect_symbol(")")
        then_body = self._statement()
        else_body = None
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self._statement()
        return ast.IfStmt(condition, then_body, else_body, token.line)

    def _while(self) -> ast.WhileStmt:
        token = self.expect_keyword("while")
        self.expect_symbol("(")
        condition = self._expression()
        self.expect_symbol(")")
        body = self._statement()
        return ast.WhileStmt(condition, body, token.line)

    def _for(self) -> ast.ForStmt:
        token = self.expect_keyword("for")
        self.expect_symbol("(")
        init = None if self.check_symbol(";") else self._simple_statement()
        self.expect_symbol(";")
        condition = None if self.check_symbol(";") else self._expression()
        self.expect_symbol(";")
        step = None if self.check_symbol(")") else self._simple_statement()
        self.expect_symbol(")")
        body = self._statement()
        return ast.ForStmt(init, condition, step, body, token.line)

    # -- expressions --

    def _expression(self, min_precedence: int = 1):
        left = self._unary()
        while True:
            token = self.current
            if token.kind != "symbol":
                break
            precedence = _PRECEDENCE.get(token.value, 0)
            if precedence < min_precedence:
                break
            self.advance()
            right = self._expression(precedence + 1)
            left = ast.Binary(token.value, left, right, token.line)
        return left

    def _unary(self):
        token = self.current
        if token.kind == "symbol" and token.value in ("-", "!", "~", "+"):
            self.advance()
            operand = self._unary()
            if token.value == "+":
                return operand
            # Constant-fold literal negation so `-5` is a literal.
            if token.value == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value, token.line)
            return ast.Unary(token.value, operand, token.line)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            if self.check_symbol("["):
                bracket = self.advance()
                index = self._expression()
                self.expect_symbol("]")
                expr = ast.Index(expr, index, bracket.line)
            else:
                break
        return expr

    def _primary(self):
        token = self.current
        if token.kind == "int_lit":
            self.advance()
            return ast.IntLit(token.value, token.line)
        if token.kind == "string_lit":
            self.advance()
            return ast.StrLit(token.value, token.line)
        if token.kind == "ident":
            self.advance()
            if self.accept_symbol("("):
                args = []
                if not self.check_symbol(")"):
                    args.append(self._expression())
                    while self.accept_symbol(","):
                        args.append(self._expression())
                self.expect_symbol(")")
                return ast.Call(token.value, args, token.line)
            return ast.VarRef(token.value, token.line)
        if token.is_symbol("("):
            self.advance()
            expr = self._expression()
            self.expect_symbol(")")
            return expr
        raise CompileError(f"expected an expression, got {token}", token.line)


def parse(source: str) -> ast.Program:
    """Parse MinC source into an AST."""
    parser = _Parser(tokenize(source))
    return parser.parse_program()
