"""MinC abstract syntax tree.

Plain dataclasses; every node carries the source line for diagnostics.
Types in MinC are just ``int`` and ``int[]`` (one-dimensional arrays),
so nodes don't carry type objects -- the semantic pass distinguishes
scalars from arrays through the symbol table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "Program", "GlobalVar", "Function", "Param",
    "Block", "DeclStmt", "AssignStmt", "ExprStmt", "IfStmt", "WhileStmt",
    "ForStmt", "ReturnStmt", "BreakStmt", "ContinueStmt",
    "IntLit", "StrLit", "VarRef", "Index", "Call", "Unary", "Binary",
]


# ---- expressions ----

@dataclass
class IntLit:
    value: int
    line: int


@dataclass
class StrLit:
    """String literal; only valid as the argument of print_str."""

    value: str
    line: int


@dataclass
class VarRef:
    name: str
    line: int


@dataclass
class Index:
    base: "Expr"
    index: "Expr"
    line: int


@dataclass
class Call:
    name: str
    args: List["Expr"]
    line: int


@dataclass
class Unary:
    op: str  # '-', '!', '~'
    operand: "Expr"
    line: int


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int


Expr = object  # union of the expression dataclasses above


# ---- statements ----

@dataclass
class Block:
    statements: List["Stmt"]
    line: int


@dataclass
class DeclStmt:
    """Local declaration: ``int x;``, ``int x = e;`` or ``int a[N];``."""

    name: str
    array_size: Optional[int]
    initializer: Optional[Expr]
    line: int


@dataclass
class AssignStmt:
    """``lvalue = expr;`` where lvalue is a VarRef or Index."""

    target: Expr
    value: Expr
    line: int


@dataclass
class ExprStmt:
    expr: Expr
    line: int


@dataclass
class IfStmt:
    condition: Expr
    then_body: "Stmt"
    else_body: Optional["Stmt"]
    line: int


@dataclass
class WhileStmt:
    condition: Expr
    body: "Stmt"
    line: int


@dataclass
class ForStmt:
    init: Optional["Stmt"]       # AssignStmt or ExprStmt (no declarations)
    condition: Optional[Expr]
    step: Optional["Stmt"]
    body: "Stmt"
    line: int


@dataclass
class ReturnStmt:
    value: Optional[Expr]
    line: int


@dataclass
class BreakStmt:
    line: int


@dataclass
class ContinueStmt:
    line: int


Stmt = object  # union of the statement dataclasses above


# ---- top level ----

@dataclass
class Param:
    name: str
    is_array: bool
    line: int


@dataclass
class GlobalVar:
    name: str
    array_size: Optional[int]
    initializer: Optional[int]          # scalar initialiser (literal)
    array_init: Optional[List[int]]     # array initialiser list
    line: int


@dataclass
class Function:
    name: str
    params: List[Param]
    body: Block
    line: int


@dataclass
class Program:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
