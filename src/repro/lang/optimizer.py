"""Peephole optimizer for the code generator's output.

The paper's traces come from gcc ``-O2``; MinC's stack-discipline code
generator is closer to ``-O0``.  This pass narrows the gap with
classic, conservative peepholes over the generated assembly:

- **store-load forwarding**: ``sw tX, off(fp)`` immediately followed by
  ``lw tY, off(fp)`` becomes ``sw`` + ``move tY, tX`` (dropped entirely
  when X == Y);
- **redundant reload**: ``lw tX, off(fp)`` immediately followed by
  ``lw tY, off(fp)`` of the same slot becomes a ``move``;
- **branch-to-next elimination**: an unconditional ``b L`` (or any
  conditional branch) whose target is the textually next instruction
  is dropped;
- **self-move elimination**: ``move tX, tX`` is dropped;
- **push-pop collapse**: the exact 4-line
  ``addi sp,sp,-4 / sw tX,0(sp) / lw tY,0(sp) / addi sp,sp,4`` window
  becomes ``move tY, tX``.

- **dead code elimination**: instructions strictly between an
  unconditional ``b``/``j``/``jr`` and the next label are unreachable
  and dropped;
- **immediate fusion**: ``li tN, C`` immediately followed by an ALU
  instruction using ``tN`` as a source collapses into the immediate
  form (``slt``→``slti``, ``add``→``addi``, ``and``→``andi``, ...)
  when C fits the immediate field.  Sound for this code generator:
  a temp register is always (re)written by the expression evaluation
  that will read it, so dropping the now-dead ``li`` cannot expose a
  stale read;
- **frame-slot register caching** (basic-block local): within a basic
  block, a ``lw tY, off(fp)`` whose slot value is already known to live
  in register ``tX`` (from an earlier ``sw``/``lw`` in the same block)
  becomes ``move tY, tX``.  Sound because MinC has no address-of
  operator: scalar frame slots can never be written through a pointer,
  so only a direct ``sw`` to the slot, a write to the caching register,
  or a block boundary (label, branch, call, syscall) invalidates the
  cache.

All patterns respect basic-block boundaries, so they cannot change
behaviour on any control-flow path.  The pass runs to a fixpoint.  It
only understands the idioms this compiler emits -- it is an optimizer
for MinC output, not a general assembly optimizer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["optimize_assembly", "OptimizationStats"]

_SW_FP = re.compile(r"^\s*sw\s+(\w+),\s*(-?\d+)\(fp\)\s*$")
_LW_FP = re.compile(r"^\s*lw\s+(\w+),\s*(-?\d+)\(fp\)\s*$")
_BRANCH = re.compile(
    r"^\s*(?:b|beq|bne|beqz|bnez|blez|bgtz|bltz|bgez)\s+.*?([.\w$]+)\s*$")
_MOVE = re.compile(r"^\s*move\s+(\w+),\s*(\w+)\s*$")
_LABEL = re.compile(r"^([.\w$]+):\s*$")
_PUSH1 = re.compile(r"^\s*addi\s+sp,\s*sp,\s*-4\s*$")
_PUSH2 = re.compile(r"^\s*sw\s+(\w+),\s*0\(sp\)\s*$")
_POP1 = re.compile(r"^\s*lw\s+(\w+),\s*0\(sp\)\s*$")
_POP2 = re.compile(r"^\s*addi\s+sp,\s*sp,\s*4\s*$")


_UNCONDITIONAL = re.compile(r"^\s*(?:b\s+[.\w$]+|j\s+[.\w$]+|jr\s+\w+)\s*$")
_BLOCK_ENDERS = re.compile(
    r"^\s*(?:b|beq|bne|beqz|bnez|blez|bgtz|bltz|bgez|j|jal|jalr|jr|syscall)\b")
# First operand is the destination for these mnemonics (sw/sh/sb and
# branches excluded on purpose).
_DEST_FIRST = re.compile(
    r"^\s*(?:add|addi|sub|mul|mulh|div|rem|and|andi|or|ori|xor|xori|nor|"
    r"slt|slti|sltu|sltiu|sll|srl|sra|sllv|srlv|srav|lui|li|la|move|not|"
    r"neg|lw|lb|lbu|lh|lhu)\s+(\w+)")


@dataclass
class OptimizationStats:
    """What the peephole pass changed."""

    store_load_forwards: int = 0
    redundant_reloads: int = 0
    branches_to_next: int = 0
    self_moves: int = 0
    push_pop_pairs: int = 0
    dead_instructions: int = 0
    cached_reloads: int = 0
    immediates_fused: int = 0
    copies_fused: int = 0

    @property
    def total(self) -> int:
        return (self.store_load_forwards + self.redundant_reloads
                + self.branches_to_next + self.self_moves
                + self.push_pop_pairs + self.dead_instructions
                + self.cached_reloads + self.immediates_fused
                + self.copies_fused)


def _label_of(line: str) -> Optional[str]:
    match = _LABEL.match(line.strip())
    return match.group(1) if match else None


def _is_code(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith((".", "#"))


def _one_pass(lines: List[str], stats: OptimizationStats) -> List[str]:
    out: List[str] = []
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        stripped = line.strip()

        # Data segment and directives pass through untouched.
        if stripped == ".data":
            out.extend(lines[i:])
            break

        # move tX, tX
        move = _MOVE.match(stripped)
        if move and move.group(1) == move.group(2):
            stats.self_moves += 1
            i += 1
            continue

        # push-pop collapse (4-line window)
        if (i + 3 < n and _PUSH1.match(lines[i].strip())
                and _PUSH2.match(lines[i + 1].strip())
                and _POP1.match(lines[i + 2].strip())
                and _POP2.match(lines[i + 3].strip())):
            src = _PUSH2.match(lines[i + 1].strip()).group(1)
            dst = _POP1.match(lines[i + 2].strip()).group(1)
            stats.push_pop_pairs += 1
            if src != dst:
                out.append(f"    move {dst}, {src}")
            i += 4
            continue

        # store-load forwarding / redundant reload
        if i + 1 < n:
            next_stripped = lines[i + 1].strip()
            store = _SW_FP.match(stripped)
            load_next = _LW_FP.match(next_stripped)
            if store and load_next and store.group(2) == load_next.group(2):
                out.append(line)
                stats.store_load_forwards += 1
                if store.group(1) != load_next.group(1):
                    out.append(f"    move {load_next.group(1)}, "
                               f"{store.group(1)}")
                i += 2
                continue
            load = _LW_FP.match(stripped)
            if (load and load_next
                    and load.group(2) == load_next.group(2)
                    and load.group(1) != load_next.group(1)):
                out.append(line)
                out.append(f"    move {load_next.group(1)}, "
                           f"{load.group(1)}")
                stats.redundant_reloads += 1
                i += 2
                continue

        # branch to the immediately following label
        branch = _BRANCH.match(stripped)
        if branch:
            j = i + 1
            while j < n and not _is_code(lines[j]) and not _label_of(lines[j]):
                j += 1
            labels = []
            while j < n and _label_of(lines[j]):
                labels.append(_label_of(lines[j]))
                j += 1
            if branch.group(1) in labels:
                stats.branches_to_next += 1
                i += 1
                continue

        out.append(line)
        i += 1
    return out


_LI = re.compile(r"^\s*li\s+(t[0-9]),\s*(-?\d+)\s*$")
_ALU3 = re.compile(r"^\s*(add|sub|and|or|xor|slt|sltu)\s+"
                   r"(\w+),\s*(\w+),\s*(\w+)\s*$")
# Immediate forms: mnemonic -> (imm mnemonic, signed?)
_IMM_FORMS = {"add": ("addi", True), "and": ("andi", False),
              "or": ("ori", False), "xor": ("xori", False),
              "slt": ("slti", True), "sltu": ("sltiu", True)}


def _fits(value: int, signed: bool) -> bool:
    if signed:
        return -0x8000 <= value <= 0x7FFF
    return 0 <= value <= 0xFFFF


def _immediate_fusion_pass(lines: List[str],
                           stats: OptimizationStats) -> List[str]:
    """Fuse ``li tN, C`` + ALU-using-tN into the immediate instruction."""
    out: List[str] = []
    i = 0
    in_data = False
    while i < len(lines):
        line = lines[i]
        if line.strip() == ".data":
            in_data = True
        load_imm = None if in_data else _LI.match(line.strip())
        if load_imm and i + 1 < len(lines):
            temp, value = load_imm.group(1), int(load_imm.group(2))
            alu = _ALU3.match(lines[i + 1].strip())
            if alu:
                op, dest, src1, src2 = alu.groups()
                fused = None
                if op in _IMM_FORMS:
                    imm_op, signed = _IMM_FORMS[op]
                    if src2 == temp and src1 != temp and _fits(value, signed):
                        fused = f"    {imm_op} {dest}, {src1}, {value}"
                    elif (op in ("add", "and", "or", "xor")
                          and src1 == temp and src2 != temp
                          and _fits(value, signed)):
                        fused = f"    {imm_op} {dest}, {src2}, {value}"
                elif (op == "sub" and src2 == temp and src1 != temp
                        and _fits(-value, True)):
                    fused = f"    addi {dest}, {src1}, {-value}"
                if fused:
                    out.append(fused)
                    stats.immediates_fused += 1
                    i += 2
                    continue
        out.append(line)
        i += 1
    return out


_TEMP = re.compile(r"^t[0-9]$")
_INSTR = re.compile(r"^\s*([a-z]+)\s*(.*)$")
_MEM_OPERAND = re.compile(r"^(-?\w*)\((\w+)\)$")

# Which operand positions are register *sources*, per mnemonic.
# 'D' = dest register, 'S' = source register, 'M' = off(base) memory
# operand (base is a source), 'X' = non-register (imm/label/shamt).
_OPERAND_SHAPES = {
    "add": "DSS", "sub": "DSS", "mul": "DSS", "mulh": "DSS", "div": "DSS",
    "rem": "DSS", "and": "DSS", "or": "DSS", "xor": "DSS", "nor": "DSS",
    "slt": "DSS", "sltu": "DSS", "sllv": "DSS", "srlv": "DSS",
    "srav": "DSS",
    "addi": "DSX", "slti": "DSX", "sltiu": "DSX", "andi": "DSX",
    "ori": "DSX", "xori": "DSX",
    "sll": "DSX", "srl": "DSX", "sra": "DSX",
    "move": "DS", "neg": "DS", "not": "DS",
    "li": "DX", "la": "DX", "lui": "DX",
    "lw": "DM", "lb": "DM", "lbu": "DM", "lh": "DM", "lhu": "DM",
    "sw": "SM", "sh": "SM", "sb": "SM",
    "beq": "SSX", "bne": "SSX",
    "beqz": "SX", "bnez": "SX", "blez": "SX", "bgtz": "SX", "bltz": "SX",
    "bgez": "SX",
    "b": "X", "j": "X", "jal": "X", "jr": "S", "syscall": "",
}


def _parse_instr(line: str):
    """(mnemonic, [operand, ...]) or None for labels/directives."""
    stripped = line.strip()
    if not _is_code(stripped) or _label_of(stripped):
        return None
    match = _INSTR.match(stripped)
    if not match:
        return None
    operands = [op.strip() for op in match.group(2).split(",")] \
        if match.group(2).strip() else []
    return match.group(1), operands


def _subst_sources(mnemonic: str, operands: List[str], old: str,
                   new: str):
    """Replace register *old* with *new* in source positions.

    Returns (new operands, read_count) or None when the mnemonic is
    unknown (no transformation is safe then).
    """
    shape = _OPERAND_SHAPES.get(mnemonic)
    if shape is None or len(shape) != len(operands):
        return None
    substituted = list(operands)
    reads = 0
    for position, kind in enumerate(shape):
        operand = operands[position]
        if kind == "S" and operand == old:
            substituted[position] = new
            reads += 1
        elif kind == "M":
            mem = _MEM_OPERAND.match(operand)
            if mem and mem.group(2) == old:
                substituted[position] = f"{mem.group(1)}({new})"
                reads += 1
    return substituted, reads


def _copy_fusion_pass(lines: List[str],
                      stats: OptimizationStats) -> List[str]:
    """Fuse adjacent register copies into their producer or consumer.

    Pattern A (consumer fusion): ``move tX, R`` + an instruction
    reading ``tX`` becomes the instruction with ``R`` substituted; the
    move is dropped.  Pattern B (producer fusion): a dest-first
    instruction writing ``tX`` + ``move R, tX`` becomes the instruction
    writing ``R`` directly.  Both rely on the code generator's
    invariant that a temp register is always rewritten by the
    expression that will next read it, so the dropped ``tX`` value can
    have no other reader.
    """
    out: List[str] = []
    i = 0
    in_data = False
    while i < len(lines):
        line = lines[i]
        if line.strip() == ".data":
            in_data = True
        if in_data or i + 1 >= len(lines):
            out.append(line)
            i += 1
            continue
        this = _parse_instr(line)
        following = _parse_instr(lines[i + 1])

        # Pattern A: move tX, R ; I(reads tX, dest tX).  The consumer
        # must *redefine* tX: then every later reader of tX sees the
        # consumer's result exactly as in the unfused code, even if
        # another pass has stretched tX's live range (the store-load
        # forwarding and register-cache passes do).
        if (this and this[0] == "move" and len(this[1]) == 2
                and _TEMP.match(this[1][0]) and following
                and this[1][0] != this[1][1]):
            temp, source = this[1]
            shape = _OPERAND_SHAPES.get(following[0], "")
            redefines = (shape.startswith("D") and following[1]
                         and following[1][0] == temp)
            if redefines:
                substituted = _subst_sources(following[0], following[1],
                                             temp, source)
                if substituted and substituted[1] > 0:
                    out.append(f"    {following[0]} "
                               + ", ".join(substituted[0]))
                    stats.copies_fused += 1
                    i += 2
                    continue

        # Pattern B: I(dest tX) ; move R, tX -- only for codegen's
        # *terminal* moves, whose destination is never a temp (s-regs,
        # v0, a0).  A temp-to-temp move may come from the forwarding or
        # cache passes, where tX still has readers, so redirecting I's
        # destination would drop a live write.
        if (this and following and following[0] == "move"
                and len(following[1]) == 2
                and _TEMP.match(following[1][1])
                and not _TEMP.match(following[1][0])
                and following[1][0] != following[1][1]):
            dest_shape = _OPERAND_SHAPES.get(this[0], "")
            if (dest_shape.startswith("D") and this[1]
                    and this[1][0] == following[1][1]):
                rewritten = [following[1][0]] + this[1][1:]
                out.append(f"    {this[0]} " + ", ".join(rewritten))
                stats.copies_fused += 1
                i += 2
                continue

        out.append(line)
        i += 1
    return out


def _dead_code_pass(lines: List[str], stats: OptimizationStats) -> List[str]:
    """Drop instructions between an unconditional jump and the next label."""
    out: List[str] = []
    unreachable = False
    in_data = False
    for line in lines:
        stripped = line.strip()
        if stripped == ".data":
            in_data = True
        if in_data:
            out.append(line)
            continue
        if _label_of(line):
            unreachable = False
        if unreachable and _is_code(line):
            stats.dead_instructions += 1
            continue
        out.append(line)
        if _UNCONDITIONAL.match(stripped):
            unreachable = True
    return out


def _register_cache_pass(lines: List[str],
                         stats: OptimizationStats) -> List[str]:
    """Basic-block-local caching of fp slots in registers.

    Tracks, inside one basic block, which register last held each
    ``off(fp)`` slot; later reloads of the slot become register moves.
    MinC scalars are never address-taken, so only direct writes can
    alter a slot (see the module docstring for the soundness argument).
    """
    out: List[str] = []
    slot_in_reg: dict = {}   # offset -> register
    reg_slots: dict = {}     # register -> set of offsets it caches
    in_data = False

    def invalidate_register(reg: str) -> None:
        for offset in reg_slots.pop(reg, ()):
            if slot_in_reg.get(offset) == reg:
                del slot_in_reg[offset]

    def bind(offset: str, reg: str) -> None:
        previous = slot_in_reg.get(offset)
        if previous is not None:
            reg_slots.get(previous, set()).discard(offset)
        slot_in_reg[offset] = reg
        reg_slots.setdefault(reg, set()).add(offset)

    for line in lines:
        stripped = line.strip()
        if stripped == ".data":
            in_data = True
        if in_data:
            out.append(line)
            continue
        if _label_of(line) or not _is_code(line):
            slot_in_reg.clear()
            reg_slots.clear()
            out.append(line)
            continue

        load = _LW_FP.match(stripped)
        store = _SW_FP.match(stripped)
        if load:
            reg, offset = load.group(1), load.group(2)
            cached = slot_in_reg.get(offset)
            if cached is not None and cached != reg:
                out.append(f"    move {reg}, {cached}")
                stats.cached_reloads += 1
                invalidate_register(reg)
                bind(offset, reg)
                continue
            if cached == reg:
                stats.cached_reloads += 1
                continue  # value already there: drop the reload
            invalidate_register(reg)
            bind(offset, reg)
            out.append(line)
            continue
        if store:
            reg, offset = store.group(1), store.group(2)
            bind(offset, reg)
            out.append(line)
            continue

        if _BLOCK_ENDERS.match(stripped):
            slot_in_reg.clear()
            reg_slots.clear()
            out.append(line)
            continue

        dest = _DEST_FIRST.match(stripped)
        if dest:
            invalidate_register(dest.group(1))
        out.append(line)
    return out


def optimize_assembly(text: str, max_passes: int = 8):
    """Run the peephole passes to a fixpoint.

    Returns ``(optimized_text, stats)``.
    """
    lines = text.splitlines()
    stats = OptimizationStats()
    for _ in range(max_passes):
        before = len(lines)
        before_total = stats.total
        lines = _one_pass(lines, stats)
        lines = _dead_code_pass(lines, stats)
        lines = _copy_fusion_pass(lines, stats)
        lines = _immediate_fusion_pass(lines, stats)
        if len(lines) == before and stats.total == before_total:
            break
    # The register-cache pass runs exactly once, after the fusion
    # passes have converged: it stretches temp live ranges (it drops a
    # reload because the value is still in a register), which would
    # invalidate the dead-temp assumption the fusion passes rely on if
    # they ran on its output.
    lines = _register_cache_pass(lines, stats)
    return "\n".join(lines) + "\n", stats
