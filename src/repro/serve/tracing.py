"""Wire-level request tracing for the serving data path.

Every request the server accepts gets a :class:`RequestTrace`: the
64-bit trace id from the frame header (version-2 clients choose it,
version-1 requests get a server-assigned one), plus monotonic stamps
at each stage boundary of the pipeline::

    recv -> submit -> dequeue -> exec_start -> exec_end -> done
           [ queue  ][  fuse   ][  execute  ][   flush   ]

``queue``   waiting in the shard's bounded queue,
``fuse``    held in the micro-batch accumulation window,
``execute`` the (possibly fused) kernel call,
``flush``   writer wait + frame write + socket drain.

Traces are cheap (one small object and six float stamps per request)
so they are **always on** -- no run needs to be active.  Completed
traces feed three surfaces: the latency histogram (bucket exemplars),
the :class:`SlowRequestSampler` (top-K by latency, served at ``/slow``
and dumped on SIGTERM), and -- when a telemetry run is active -- one
``serve.request`` span event per request carrying the stage
breakdown.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["new_trace_id", "format_trace_id", "RequestTrace",
           "SlowRequestSampler"]

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Per-process upper half of generated trace ids; the lower half is a
#: sequence number, so ids stay unique within a process and collide
#: across processes only with ~2^-32 probability.
_PROCESS_NONCE = (random.getrandbits(24) ^ os.getpid()) & 0xFFFFFFFF
_SEQUENCE = itertools.count(1)


def new_trace_id() -> int:
    """A fresh nonzero 64-bit trace id (0 means "unassigned")."""
    return ((_PROCESS_NONCE << 32) | (next(_SEQUENCE) & 0xFFFFFFFF)) or 1


def format_trace_id(trace_id: int) -> str:
    """Canonical textual form: 16 lowercase hex digits."""
    return f"{trace_id & _MASK64:016x}"


#: Pipeline stages in order, as (name, start-stamp, end-stamp) attrs.
_STAGES = (("queue", "t_submit", "t_dequeue"),
           ("fuse", "t_dequeue", "t_exec_start"),
           ("execute", "t_exec_start", "t_exec_end"),
           ("flush", "t_exec_end", "t_done"))


@dataclass
class RequestTrace:
    """One request's identity and stage stamps through the server."""

    trace_id: int
    frame_type: str
    request_id: int = 0
    version: int = 0
    session_id: int = 0
    shard: Optional[int] = None
    records: int = 0
    t_recv: Optional[float] = None
    t_submit: Optional[float] = None
    t_dequeue: Optional[float] = None
    t_exec_start: Optional[float] = None
    t_exec_end: Optional[float] = None
    t_done: Optional[float] = None
    batch_size: int = 0
    fused: bool = False
    status: str = "ok"
    error: Optional[str] = None

    @property
    def trace_id_hex(self) -> str:
        return format_trace_id(self.trace_id)

    def latency_s(self) -> float:
        """recv -> response-written wall time (0.0 while incomplete)."""
        if self.t_recv is None or self.t_done is None:
            return 0.0
        return max(0.0, self.t_done - self.t_recv)

    def stages(self) -> Dict[str, float]:
        """Per-stage durations (seconds); stages never entered are
        absent (e.g. immediate responses skip queue/fuse/execute)."""
        out = {}
        for name, start_attr, end_attr in _STAGES:
            start = getattr(self, start_attr)
            end = getattr(self, end_attr)
            if start is not None and end is not None:
                out[name] = max(0.0, end - start)
        return out

    def to_dict(self) -> dict:
        """JSON-able record (the ``/slow`` sample entry shape)."""
        out = {
            "trace_id": self.trace_id_hex,
            "type": self.frame_type,
            "request_id": self.request_id,
            "protocol_version": self.version,
            "session": self.session_id,
            "shard": self.shard,
            "records": self.records,
            "batch_size": self.batch_size,
            "fused": self.fused,
            "status": self.status,
            "latency_ms": round(self.latency_s() * 1e3, 4),
            "stages_ms": {name: round(seconds * 1e3, 4)
                          for name, seconds in self.stages().items()},
        }
        if self.error:
            out["error"] = self.error
        return out


class SlowRequestSampler:
    """Always-on top-K (by latency) reservoir of completed traces.

    A fixed-size min-heap: a completed request enters only when it is
    slower than the current K-th slowest, so steady-state cost per
    request is one comparison.  ``snapshot()`` is safe from any thread
    (the obs endpoint and the SIGTERM dump read it while the event
    loop is still completing traces).
    """

    def __init__(self, k: int = 32):
        if k < 1:
            raise ValueError(f"sampler size must be >= 1, got {k}")
        self.k = k
        self.observed = 0
        self._seq = itertools.count()
        self._heap: List[tuple] = []
        self._lock = threading.Lock()

    def add(self, trace: RequestTrace) -> None:
        latency = trace.latency_s()
        with self._lock:
            self.observed += 1
            if len(self._heap) < self.k:
                heapq.heappush(self._heap,
                               (latency, next(self._seq), trace.to_dict()))
            elif latency > self._heap[0][0]:
                heapq.heapreplace(self._heap,
                                  (latency, next(self._seq), trace.to_dict()))

    def snapshot(self) -> dict:
        """JSON-able dump: slowest first."""
        with self._lock:
            entries = sorted(self._heap, reverse=True)
            observed = self.observed
        return {
            "schema": 1,
            "k": self.k,
            "observed": observed,
            "slowest": [entry for _, _, entry in entries],
        }
