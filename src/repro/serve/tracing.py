"""Wire-level request tracing for the serving data path.

Every request the server accepts gets a :class:`RequestTrace`: the
64-bit trace id from the frame header (version-2 clients choose it,
version-1 requests get a server-assigned one), plus monotonic stamps
at each stage boundary of the pipeline::

    recv -> submit -> dequeue -> exec_start -> exec_end -> done
           [ queue  ][  fuse   ][  execute  ][   flush   ]

``queue``   waiting in the shard's bounded queue,
``fuse``    held in the micro-batch accumulation window,
``execute`` the (possibly fused) kernel call,
``flush``   writer wait + frame write + socket drain.

Traces are cheap (one small object and six float stamps per request)
so they are **always on** -- no run needs to be active.  Completed
traces feed four surfaces: the latency histogram (bucket exemplars),
the :class:`SlowRequestSampler` (top-K by latency, served at ``/slow``
and dumped on SIGTERM), the bounded per-process :class:`TraceStore`
(served at ``/trace/<id>``), and -- when a telemetry run is active --
one ``serve.request`` span event per request carrying the stage
breakdown.

The cluster router stamps its own :class:`RouterTrace` per proxied
frame, keyed by the *same* u64 trace id the worker stamps::

    recv -> [route] -> (park .. unpark -> flush) -> forward -> reply -> done
            placement    migration / failover wait   proxy      write

so ``GET /trace/<id>`` on the router can merge the router span with
the worker span(s) -- including a request whose worker died mid-flight
and whose frame was re-sent to a second worker -- into one ordered
cross-process timeline.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["new_trace_id", "format_trace_id", "parse_trace_id",
           "RequestTrace", "RouterTrace", "SlowRequestSampler",
           "TraceStore", "render_trace_report"]

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Per-process upper half of generated trace ids; the lower half is a
#: sequence number, so ids stay unique within a process and collide
#: across processes only with ~2^-32 probability.
_PROCESS_NONCE = (random.getrandbits(24) ^ os.getpid()) & 0xFFFFFFFF
_SEQUENCE = itertools.count(1)


def new_trace_id() -> int:
    """A fresh nonzero 64-bit trace id (0 means "unassigned")."""
    return ((_PROCESS_NONCE << 32) | (next(_SEQUENCE) & 0xFFFFFFFF)) or 1


def format_trace_id(trace_id: int) -> str:
    """Canonical textual form: 16 lowercase hex digits."""
    return f"{trace_id & _MASK64:016x}"


def parse_trace_id(text: str) -> int:
    """Inverse of :func:`format_trace_id`; accepts any hex spelling
    (with or without leading zeros / ``0x``)."""
    try:
        value = int(str(text).strip().lower(), 16)
    except (TypeError, ValueError):
        raise ValueError(f"bad trace id {text!r} (expected up to 16 "
                         f"hex digits)") from None
    if not 0 <= value <= _MASK64:
        raise ValueError(f"trace id {text!r} does not fit in 64 bits")
    return value


#: Pipeline stages in order, as (name, start-stamp, end-stamp) attrs.
_STAGES = (("queue", "t_submit", "t_dequeue"),
           ("fuse", "t_dequeue", "t_exec_start"),
           ("execute", "t_exec_start", "t_exec_end"),
           ("flush", "t_exec_end", "t_done"))


@dataclass
class RequestTrace:
    """One request's identity and stage stamps through the server."""

    trace_id: int
    frame_type: str
    request_id: int = 0
    version: int = 0
    session_id: int = 0
    shard: Optional[int] = None
    records: int = 0
    t_recv: Optional[float] = None
    t_submit: Optional[float] = None
    t_dequeue: Optional[float] = None
    t_exec_start: Optional[float] = None
    t_exec_end: Optional[float] = None
    t_done: Optional[float] = None
    batch_size: int = 0
    fused: bool = False
    status: str = "ok"
    error: Optional[str] = None

    @property
    def trace_id_hex(self) -> str:
        return format_trace_id(self.trace_id)

    def latency_s(self) -> float:
        """recv -> response-written wall time (0.0 while incomplete)."""
        if self.t_recv is None or self.t_done is None:
            return 0.0
        return max(0.0, self.t_done - self.t_recv)

    def stages(self) -> Dict[str, float]:
        """Per-stage durations (seconds); stages never entered are
        absent (e.g. immediate responses skip queue/fuse/execute)."""
        out = {}
        for name, start_attr, end_attr in _STAGES:
            start = getattr(self, start_attr)
            end = getattr(self, end_attr)
            if start is not None and end is not None:
                out[name] = max(0.0, end - start)
        return out

    def to_dict(self) -> dict:
        """JSON-able record (the ``/slow`` sample entry shape)."""
        out = {
            "trace_id": self.trace_id_hex,
            "type": self.frame_type,
            "request_id": self.request_id,
            "protocol_version": self.version,
            "session": self.session_id,
            "shard": self.shard,
            "records": self.records,
            "batch_size": self.batch_size,
            "fused": self.fused,
            "status": self.status,
            "latency_ms": round(self.latency_s() * 1e3, 4),
            "stages_ms": {name: round(seconds * 1e3, 4)
                          for name, seconds in self.stages().items()},
        }
        if self.error:
            out["error"] = self.error
        return out


#: Router-side stages in pipeline order (see :class:`RouterTrace`).
ROUTER_STAGE_ORDER = ("route", "park", "flush", "migrate_wait",
                      "proxy", "write")

#: Worker-side stages in pipeline order (see :class:`RequestTrace`).
WORKER_STAGE_ORDER = ("queue", "fuse", "execute", "flush")


@dataclass
class RouterTrace:
    """One proxied request's identity and stage stamps through the
    cluster router, keyed by the same u64 trace id the worker stamps.

    Stamps (all ``time.monotonic``):

    ``t_recv``
        frame read off the client connection (accept);
    ``t_parked`` / ``t_unparked``
        first parked / flushed out of the park queue (hot migration or
        failover re-home in progress);
    ``t_first_forward`` / ``t_last_forward``
        written to a worker; they differ when the first owner died
        mid-flight and the frame was re-sent (``resends`` > 0);
    ``t_replied``
        the worker's response arrived back at the router;
    ``t_done``
        response written (and drained) to the client.

    Derived stages: ``route`` (accept to first hand-off: placement +
    dispatch), ``park`` (parked awaiting migration/failover),
    ``flush`` (unpark to forward), ``migrate_wait`` (between the
    forward a dead worker swallowed and the re-send), ``proxy``
    (last forward to worker reply -- the worker round trip) and
    ``write`` (reply to client-socket drain).  Duck-type compatible
    with :class:`RequestTrace` where the samplers and stores care
    (``latency_s`` / ``to_dict`` / ``trace_id_hex``).
    """

    trace_id: int
    frame_type: str
    request_id: int = 0
    version: int = 0
    session_id: int = 0
    records: int = 0
    hops: List[int] = field(default_factory=list)
    t_recv: Optional[float] = None
    t_parked: Optional[float] = None
    t_unparked: Optional[float] = None
    t_first_forward: Optional[float] = None
    t_last_forward: Optional[float] = None
    t_replied: Optional[float] = None
    t_done: Optional[float] = None
    parks: int = 0
    status: str = "ok"
    error: Optional[str] = None

    @property
    def trace_id_hex(self) -> str:
        return format_trace_id(self.trace_id)

    @property
    def resends(self) -> int:
        return max(0, len(self.hops) - 1)

    def on_park(self, now: float) -> None:
        if self.t_parked is None:
            self.t_parked = now
        self.parks += 1

    def on_unpark(self, now: float) -> None:
        self.t_unparked = now

    def on_forward(self, worker: int, now: float) -> None:
        self.hops.append(worker)
        if self.t_first_forward is None:
            self.t_first_forward = now
        self.t_last_forward = now

    def latency_s(self) -> float:
        """recv -> response-written wall time (0.0 while incomplete)."""
        if self.t_recv is None or self.t_done is None:
            return 0.0
        return max(0.0, self.t_done - self.t_recv)

    def stages(self) -> Dict[str, float]:
        """Per-stage durations (seconds); stages never entered are
        absent (an unparked, un-resent frame has route/proxy/write)."""
        out: Dict[str, float] = {}
        first_handoff = (self.t_parked if self.t_parked is not None
                         else self.t_first_forward)
        if self.t_recv is not None and first_handoff is not None:
            out["route"] = max(0.0, first_handoff - self.t_recv)
        if self.t_parked is not None and self.t_unparked is not None:
            out["park"] = max(0.0, self.t_unparked - self.t_parked)
            if self.t_last_forward is not None:
                out["flush"] = max(
                    0.0, self.t_last_forward - self.t_unparked)
        if (self.resends and self.t_first_forward is not None
                and self.t_last_forward is not None):
            out["migrate_wait"] = max(
                0.0, self.t_last_forward - self.t_first_forward)
        if self.t_last_forward is not None and self.t_replied is not None:
            out["proxy"] = max(0.0, self.t_replied - self.t_last_forward)
        if self.t_replied is not None and self.t_done is not None:
            out["write"] = max(0.0, self.t_done - self.t_replied)
        return out

    def to_dict(self) -> dict:
        """JSON-able span record (``/trace`` and router ``/slow``)."""
        out = {
            "source": "router",
            "trace_id": self.trace_id_hex,
            "type": self.frame_type,
            "request_id": self.request_id,
            "protocol_version": self.version,
            "session": self.session_id,
            "records": self.records,
            "workers": list(self.hops),
            "parked": self.parks > 0,
            "resends": self.resends,
            "status": self.status,
            "latency_ms": round(self.latency_s() * 1e3, 4),
            "stages_ms": {name: round(seconds * 1e3, 4)
                          for name, seconds in self.stages().items()},
        }
        if self.error:
            out["error"] = self.error
        return out


class TraceStore:
    """Bounded in-memory store of completed trace spans per process.

    One request can legitimately leave more than one span in a single
    process (a client re-sending the same trace id over a fresh
    connection after a reconnect), so the store maps trace id -> list
    of span dicts, appended in completion order.  Capacity bounds the
    *total span count*; the oldest spans are evicted first, so steady
    state memory is O(capacity) regardless of traffic.  Thread-safe:
    the event loop appends while CLI/obs threads read.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"trace store capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self.stored = 0
        self._order: deque = deque()       # (trace_id, span) FIFO
        self._spans: Dict[int, List[dict]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._order)

    def put(self, trace_id: int, span: dict) -> None:
        with self._lock:
            self.stored += 1
            self._order.append((trace_id, span))
            self._spans.setdefault(trace_id, []).append(span)
            while len(self._order) > self.capacity:
                old_id, old_span = self._order.popleft()
                spans = self._spans.get(old_id)
                if spans is not None:
                    try:
                        spans.remove(old_span)
                    except ValueError:
                        pass
                    if not spans:
                        del self._spans[old_id]

    def get(self, trace_id: int) -> List[dict]:
        """All stored spans for *trace_id*, oldest first."""
        with self._lock:
            return [dict(span)
                    for span in self._spans.get(trace_id, [])]

    def lookup(self, trace_id: int) -> dict:
        """The ``/trace/<id>`` body shape."""
        spans = self.get(trace_id)
        return {"schema": 1, "trace_id": format_trace_id(trace_id),
                "found": bool(spans), "spans": spans}

    def dump(self, limit: Optional[int] = None) -> dict:
        """The ``/trace`` body: most recent spans (newest last)."""
        with self._lock:
            entries = list(self._order)
        if limit is not None and limit >= 0:
            entries = entries[-limit:]
        return {
            "schema": 1,
            "capacity": self.capacity,
            "stored": self.stored,
            "retained": len(entries),
            "spans": [dict(span, trace_id=format_trace_id(tid))
                      if "trace_id" not in span else dict(span)
                      for tid, span in entries],
        }


def render_trace_report(report: dict) -> str:
    """Human-readable timeline for a ``/trace/<id>`` body (the
    ``repro trace <id> --from`` renderer)."""
    trace_id = report.get("trace_id", "?")
    spans = report.get("spans", [])
    if not report.get("found") or not spans:
        return f"trace {trace_id}: not found (evicted or never seen)\n"
    scope = "cluster" if report.get("cluster") else "process"
    lines = [f"trace {trace_id}: {len(spans)} span(s), {scope}"]
    for span in spans:
        if span.get("source") == "router":
            where = "router"
            hops = span.get("workers", [])
            extra = ""
            if hops:
                extra += "  workers " + "->".join(str(w) for w in hops)
            if span.get("resends"):
                extra += f"  resends {span['resends']}"
            elif span.get("parked"):
                extra += "  parked"
            stage_order = ROUTER_STAGE_ORDER
        else:
            where = f"worker {span['worker']}" if "worker" in span \
                else "worker"
            extra = ""
            if span.get("shard") is not None:
                extra += f"  shard {span['shard']}"
            if span.get("batch_size"):
                extra += (f"  batch {span['batch_size']}"
                          + ("+fused" if span.get("fused") else ""))
            stage_order = WORKER_STAGE_ORDER
        lines.append(
            f"  {where:<10} {span.get('type', '?'):<12} "
            f"sid {span.get('session', '?')}  "
            f"{span.get('latency_ms', 0):>9.3f}ms  "
            f"{span.get('status', '?')}{extra}")
        stages = span.get("stages_ms", {})
        shown = [name for name in stage_order if name in stages]
        shown += [name for name in sorted(stages) if name not in shown]
        if shown:
            lines.append("    " + " | ".join(
                f"{name} {stages[name]:.3f}ms" for name in shown))
        if span.get("error"):
            lines.append(f"    error: {span['error']}")
    return "\n".join(lines) + "\n"


class SlowRequestSampler:
    """Always-on top-K (by latency) reservoir of completed traces.

    A fixed-size min-heap: a completed request enters only when it is
    slower than the current K-th slowest, so steady-state cost per
    request is one comparison.  ``snapshot()`` is safe from any thread
    (the obs endpoint and the SIGTERM dump read it while the event
    loop is still completing traces).
    """

    def __init__(self, k: int = 32):
        if k < 1:
            raise ValueError(f"sampler size must be >= 1, got {k}")
        self.k = k
        self.observed = 0
        self._seq = itertools.count()
        self._heap: List[tuple] = []
        self._lock = threading.Lock()

    def add(self, trace: RequestTrace) -> None:
        latency = trace.latency_s()
        with self._lock:
            self.observed += 1
            if len(self._heap) < self.k:
                heapq.heappush(self._heap,
                               (latency, next(self._seq), trace.to_dict()))
            elif latency > self._heap[0][0]:
                heapq.heapreplace(self._heap,
                                  (latency, next(self._seq), trace.to_dict()))

    def snapshot(self) -> dict:
        """JSON-able dump: slowest first."""
        with self._lock:
            entries = sorted(self._heap, reverse=True)
            observed = self.observed
        return {
            "schema": 1,
            "k": self.k,
            "observed": observed,
            "slowest": [entry for _, _, entry in entries],
        }
