"""Cross-connection micro-batching for one shard.

Each shard owns a :class:`MicroBatcher`: a bounded asyncio queue of
:class:`WorkItem` requests feeding one worker task.  The worker drains
the queue into micro-batches -- everything immediately available, then
up to ``max_delay`` of waiting for stragglers, capped at ``max_batch``
items -- and executes them against the shard's sessions.

Within a batch, runs of STEP / STEP_BLOCK items for the *same* session
are fused into a single :meth:`~repro.serve.session.Session.step_block`
call, so records arriving on different connections share one pass
through the vectorised kernels.  Per-session FIFO order is preserved:
items are grouped by session but executed in arrival order within each
session, and non-fusible items (PREDICT, OUTCOME, FLUSH, ...) act as
fences in that session's stream.

Backpressure is the queue bound: ``submit`` awaits when the shard is
``queue_depth`` items behind, which stalls the submitting connection's
reader (and, through TCP, the client) instead of buffering unboundedly.

Results travel back through per-item futures.  The worker never lets a
session's exception kill the shard: it lands on the item's future and
the batch continues.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serve.tracing import RequestTrace

__all__ = ["WorkItem", "MicroBatcher"]

_MASK32 = 0xFFFFFFFF


@dataclass
class WorkItem:
    """One queued request: which session, what to run, where to answer.

    ``fuse_key`` is non-None for STEP / STEP_BLOCK items; adjacent
    items (per session) whose ``fuse_key`` matches are merged into one
    kernel call.  ``pcs``/``values`` carry the records for fusible
    items -- int64 arrays on the zero-copy server path, though plain
    lists still work -- and ``run`` executes everything else.
    ``trace``, when present, is stamped at each stage boundary
    (dequeue, execute start/end) so the request's span breakdown
    survives batching and fusion.
    """

    session_id: int
    future: asyncio.Future
    run: Optional[Callable] = None
    fuse_key: Optional[str] = None
    pcs: "np.ndarray | List[int]" = field(default_factory=list)
    values: "np.ndarray | List[int]" = field(default_factory=list)
    trace: Optional[RequestTrace] = None


class MicroBatcher:
    """Bounded queue + batch-draining worker for one shard."""

    def __init__(self, max_batch: int = 64, max_delay: float = 0.002,
                 queue_depth: int = 1024):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.batches = 0
        self.items = 0
        self.fused_records = 0
        # Optional server hook: called as on_records(session_id, n, hits)
        # after every fused STEP/STEP_BLOCK execution.
        self.on_records: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------ intake

    def qsize(self) -> int:
        return self._queue.qsize()

    async def submit(self, item: WorkItem) -> None:
        """Enqueue; awaits (backpressure) when the shard is behind."""
        await self._queue.put(item)

    # ------------------------------------------------------------- drain

    async def next_batch(self) -> List[WorkItem]:
        """Block for the next micro-batch.

        Waits for the first item, then keeps accepting until the batch
        is full, the queue is empty *and* ``max_delay`` has elapsed
        since the batch opened.
        """
        loop = asyncio.get_running_loop()
        batch = [await self._queue.get()]
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                batch.append(await asyncio.wait_for(self._queue.get(),
                                                    remaining))
            except asyncio.TimeoutError:
                break
        self.batches += 1
        self.items += len(batch)
        now = time.monotonic()
        for item in batch:
            if item.trace is not None:
                item.trace.t_dequeue = now
        return batch

    def execute(self, batch: List[WorkItem], sessions) -> None:
        """Run a micro-batch against *sessions*, resolving every future.

        *sessions* is either a plain ``{session_id: Session}`` dict or
        a resolver callable ``session_id -> Session | None`` -- the
        server passes a resolver that transparently reloads spilled
        sessions from the arena store, so an evicted session's next
        request looks exactly like a resident one.  A resolver
        exception (corrupt arena, state-version mismatch) lands on that
        session's futures and the rest of the batch proceeds: resolver
        failures must reach the client as ERROR responses, never kill
        the shard worker.

        Synchronous on purpose: one batch is one scheduling unit of the
        shard worker, and nothing inside it awaits.
        """
        resolve = sessions.get if hasattr(sessions, "get") else sessions
        for session_id, items in self._by_session(batch).items():
            try:
                session = resolve(session_id)
            except Exception as exc:  # noqa: BLE001 - must reach the client
                for item in items:
                    if not item.future.cancelled():
                        item.future.set_exception(exc)
                continue
            for fused in self._fuse_runs(items):
                self._execute_fused(fused, session)

    @staticmethod
    def _by_session(batch: List[WorkItem]) -> Dict[int, List[WorkItem]]:
        grouped: Dict[int, List[WorkItem]] = {}
        for item in batch:
            grouped.setdefault(item.session_id, []).append(item)
        return grouped

    @staticmethod
    def _fuse_runs(items: List[WorkItem]) -> List[List[WorkItem]]:
        """Split one session's FIFO stream into maximal fusible runs."""
        runs: List[List[WorkItem]] = []
        for item in items:
            if (runs and item.fuse_key is not None
                    and runs[-1][0].fuse_key == item.fuse_key):
                runs[-1].append(item)
            else:
                runs.append([item])
        return runs

    def _execute_fused(self, fused: List[WorkItem], session) -> None:
        done = [item for item in fused if not item.future.cancelled()]
        if not done:
            return
        start = time.monotonic()
        for item in fused:
            if item.trace is not None:
                item.trace.t_exec_start = start
                item.trace.batch_size = len(fused)
                item.trace.fused = len(fused) > 1
        try:
            if fused[0].fuse_key is None:
                item = fused[0]
                result = item.run(session)
                if item.trace is not None:
                    item.trace.t_exec_end = time.monotonic()
                if not item.future.cancelled():
                    item.future.set_result(result)
                return
            if len(fused) == 1:
                pcs = np.asarray(fused[0].pcs, dtype=np.int64)
                values = np.asarray(fused[0].values, dtype=np.int64)
            else:
                pcs = np.concatenate(
                    [np.asarray(item.pcs, dtype=np.int64) for item in fused])
                values = np.concatenate(
                    [np.asarray(item.values, dtype=np.int64)
                     for item in fused])
            if session is None:
                raise KeyError(fused[0].session_id)
            predicted, _ = session.step_block(pcs, values)
            predicted = np.asarray(predicted, dtype=np.int64)
            matches = predicted == (values & _MASK32)
            if len(fused) > 1:
                self.fused_records += len(pcs)
            end = time.monotonic()
            offset = 0
            for item in fused:
                part = predicted[offset:offset + len(item.pcs)]
                hits = int(np.count_nonzero(
                    matches[offset:offset + len(item.pcs)]))
                offset += len(item.pcs)
                if item.trace is not None:
                    item.trace.t_exec_end = end
                if self.on_records is not None:
                    self.on_records(item.session_id, len(item.pcs), hits)
                if not item.future.cancelled():
                    item.future.set_result((part, hits))
        except Exception as exc:  # noqa: BLE001 - must reach the client
            end = time.monotonic()
            for item in fused:
                if item.trace is not None and item.trace.t_exec_end is None:
                    item.trace.t_exec_end = end
                if not item.future.cancelled():
                    item.future.set_exception(exc)

    async def drain(self) -> int:
        """Wait until every queued item has been picked up by the
        worker; returns how many were still queued when called."""
        pending = self._queue.qsize()
        await self._queue.join()
        return pending

    def task_done(self, count: int) -> None:
        for _ in range(count):
            self._queue.task_done()
