"""Embedded HTTP observability endpoint for the prediction server.

A tiny asyncio HTTP/1.0 server sharing the prediction server's event
loop, listening on a *separate* port (``--obs-port``) so scrapes never
compete with the binary protocol for a listener.  Routes:

``/metrics``
    The live process registry in Prometheus text exposition format
    0.0.4 (``?exemplars=1`` adds OpenMetrics-style trace-id exemplars
    to histogram buckets; ``?prefix=repro_serve`` restricts names).
``/healthz``
    JSON liveness: overall status (``ok`` / ``degraded`` /
    ``draining``), per-shard queue depth and session counts, firing
    SLO alerts.  Servers running with ``--state-dir`` additionally
    report the durable-state gauges (``sessions_resident`` /
    ``sessions_spilled``) and counters (``evictions_total``,
    ``reloads_total``, ``snapshots_total``) plus per-shard
    ``spilled`` / ``evictions`` / ``reloads``.  Always HTTP 200 --
    health is in the body's ``status`` field so scripted probes can
    parse one shape.
``/slo``
    JSON burn-rate report: every objective with fast/slow window burn
    rates plus live latency percentiles.
``/slow``
    The top-K slowest-request sample with per-stage span breakdowns.
``/trace`` and ``/trace/<id>``
    The bounded in-process trace store: the most recent completed
    request spans (``?limit=N``), or every span recorded for one
    16-hex-digit trace id.  The cluster router serves the same routes
    fleet-wide (its ``/trace/<id>`` merges the router's own span with
    the worker spans into one ordered cross-process timeline).
``/tables``
    Live table-usage report: per-shard (and per-session) occupancy,
    live bits, hits per live bit, and level-1 aliasing ratios from the
    actual session table state.

The implementation is deliberately minimal -- request line + headers
in, one response out, connection closed -- because its only consumers
are scrapers, ``repro top``, and curl.  No external HTTP dependency.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.tracing import parse_trace_id
from repro.telemetry.live import live_prometheus_text

__all__ = ["ObservabilityServer"]

_MAX_REQUEST_LINE = 8192
_HEADER_TIMEOUT = 5.0


class ObservabilityServer:
    """HTTP scrape surface bound to one :class:`PredictionServer`."""

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host = host
        self.port = port
        self._listener: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._listener.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None

    # ---------------------------------------------------------- handling

    async def _handle(self, reader, writer) -> None:
        try:
            status, content_type, body = await self._respond(reader)
            writer.write(
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii"))
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader) -> Tuple[str, str, bytes]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), _HEADER_TIMEOUT)
        except asyncio.TimeoutError:
            return _text("408 Request Timeout", "request timeout\n")
        if len(request_line) > _MAX_REQUEST_LINE:
            return _text("414 URI Too Long", "request line too long\n")
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return _text("400 Bad Request", "malformed request line\n")
        method, target = parts[0], parts[1]
        # Drain headers (ignored) up to the blank line.
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(),
                                              _HEADER_TIMEOUT)
            except asyncio.TimeoutError:
                break
            if line in (b"\r\n", b"\n", b""):
                break
        if method != "GET":
            return _text("405 Method Not Allowed", "GET only\n")
        split = urlsplit(target)
        # Subclasses (the cluster router's aggregating endpoint) may
        # route to coroutines -- they scrape worker endpoints before
        # answering; the base server's routes stay synchronous.
        result = self._route(split.path, parse_qs(split.query))
        if inspect.isawaitable(result):
            result = await result
        return result

    def _route(self, path: str, query: dict) -> Tuple[str, str, bytes]:
        if path == "/metrics":
            text = live_prometheus_text(
                prefix=_first(query, "prefix"),
                exemplars=_flag(query, "exemplars"))
            return ("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                    text.encode("utf-8"))
        if path == "/healthz":
            return _json(self.server.healthz())
        if path == "/slo":
            return _json(self.server.slo_report())
        if path == "/slow":
            return _json(self.server.slow_requests())
        if path == "/tables":
            return _json(self.server.tables_report())
        if path == "/trace":
            return _json(self.server.trace_dump(_int(query, "limit")))
        if path.startswith("/trace/"):
            try:
                trace_id = parse_trace_id(path[len("/trace/"):])
            except ValueError as exc:
                return _text("400 Bad Request", f"{exc}\n")
            return _json(self.server.trace_lookup(trace_id))
        if path == "/":
            return _json({
                "service": "repro-serve",
                "endpoints": ["/metrics", "/healthz", "/slo", "/slow",
                              "/tables", "/trace"],
            })
        return _text("404 Not Found", f"no route {path}\n")


def _first(query: dict, key: str) -> Optional[str]:
    values = query.get(key)
    return values[0] if values else None


def _flag(query: dict, key: str) -> bool:
    value = _first(query, key)
    return value not in (None, "", "0", "false", "no")


def _int(query: dict, key: str) -> Optional[int]:
    value = _first(query, key)
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        return None


def _json(payload: dict) -> Tuple[str, str, bytes]:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return "200 OK", "application/json", body


def _text(status: str, message: str) -> Tuple[str, str, bytes]:
    return status, "text/plain; charset=utf-8", message.encode("utf-8")
