"""Fleet-wide observability aggregation for the router tier.

Two pieces:

- tiny asyncio HTTP/1.0 GET helpers to scrape the workers' embedded
  :class:`~repro.serve.obs.ObservabilityServer` endpoints (no external
  HTTP dependency, same as the endpoints themselves);
- a Prometheus text-format merger that relabels every worker's samples
  with a ``worker="i"`` label and deduplicates ``# HELP`` / ``# TYPE``
  comment lines, so the router's ``/metrics`` is one well-formed
  exposition covering the router's own registry plus the whole fleet.

The merger is deliberately conservative: it only needs to understand
the exposition our own :func:`repro.telemetry.live.live_prometheus_text`
emits (comment lines, ``name value``, ``name{labels} value``, optional
OpenMetrics exemplar suffix), and it passes sample lines through
byte-for-byte apart from the injected label.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

__all__ = ["http_get", "http_get_json", "merge_prometheus_texts",
           "inject_labels"]

_MAX_RESPONSE = 1 << 26


async def http_get(host: str, port: int, path: str,
                   timeout: float = 5.0) -> str:
    """GET ``http://host:port{path}``, returning the decoded body.

    Raises ``ConnectionError`` on refusal/reset and ``ValueError`` on
    a non-200 status -- callers treat both as "worker unreachable".
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\n"
                     f"Host: {host}\r\n\r\n".encode("ascii"))
        await writer.drain()
        # Read to EOF (the endpoint closes after one response); a
        # single read(n) would return the first segment only.
        chunks = []
        total = 0
        while total < _MAX_RESPONSE:
            chunk = await asyncio.wait_for(reader.read(1 << 16), timeout)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
        raw = b"".join(chunks)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    parts = status_line.split()
    if len(parts) < 2 or parts[1] != "200":
        raise ValueError(f"GET {path} on {host}:{port} -> {status_line}")
    return body.decode("utf-8", "replace")


async def http_get_json(host: str, port: int, path: str,
                        timeout: float = 5.0) -> dict:
    return json.loads(await http_get(host, port, path, timeout))


# ----------------------------------------------------- prometheus merge

def inject_labels(line: str, labels: Dict[str, str]) -> str:
    """One sample line with *labels* spliced into its label set."""
    if not labels:
        return line
    rendered = ",".join(f'{key}="{value}"'
                        for key, value in labels.items())
    # Find where the metric name ends: at an existing label block or
    # at the first space (exemplar suffixes live after the value, so
    # both splits are safe).
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        return f"{line[:brace + 1]}{rendered},{line[brace + 1:]}"
    if space == -1:
        return line  # not a sample line; pass through untouched
    return f"{line[:space]}{{{rendered}}}{line[space:]}"


def merge_prometheus_texts(
        parts: List[Tuple[Optional[Dict[str, str]], str]]) -> str:
    """Merge several expositions into one.

    *parts* is ``[(extra_labels_or_None, exposition_text), ...]``.
    Samples keep their part order within a metric family; ``# HELP`` /
    ``# TYPE`` lines are emitted once per family, from the first part
    that declares them.  Families appear in first-seen order.
    """
    order: List[str] = []
    help_lines: Dict[str, str] = {}
    type_lines: Dict[str, str] = {}
    samples: Dict[str, List[str]] = {}

    def family_of(sample_line: str) -> str:
        name = sample_line.split("{", 1)[0].split(" ", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[:-len(suffix)]
                # Histogram samples belong to the base family when we
                # saw its TYPE; plain counters ending in _count stay
                # themselves.
                if base in type_lines or base in samples:
                    return base
        return name

    def seat(family: str) -> None:
        if family not in samples:
            samples[family] = []
            order.append(family)

    for labels, text in parts:
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                name = line.split(" ", 3)[2]
                seat(name)
                help_lines.setdefault(name, line)
            elif line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                seat(name)
                type_lines.setdefault(name, line)
            elif line.startswith("#"):
                continue
            else:
                family = family_of(line)
                seat(family)
                samples[family].append(
                    inject_labels(line, labels or {}))
    out: List[str] = []
    for family in order:
        if not samples[family] and family not in type_lines:
            continue
        if family in help_lines:
            out.append(help_lines[family])
        if family in type_lines:
            out.append(type_lines[family])
        out.extend(samples[family])
    return "\n".join(out) + ("\n" if out else "")
