"""Multi-worker cluster serving: supervisor, rendezvous ring, router.

The cluster tier scales :class:`~repro.serve.server.PredictionServer`
across processes without changing the wire protocol clients speak:

- :class:`~repro.serve.cluster.supervisor.ClusterSupervisor` forks and
  drains N worker processes;
- :class:`~repro.serve.cluster.ring.RendezvousRing` maps session ids
  to worker slots with minimal disruption on membership change;
- :class:`~repro.serve.cluster.router.Router` is the client-facing
  proxy: session-affine zero-copy forwarding, hot migration over the
  durable-state arenas, failover re-homing, aggregated observability;
- :class:`~repro.serve.cluster.router.ClusterThread` hosts the pair
  behind a blocking API for tests, loadgen and the CLI.
"""

from repro.serve.cluster.ring import RendezvousRing, rendezvous_score
from repro.serve.cluster.router import (ClusterControlError, ClusterThread,
                                        Router)
from repro.serve.cluster.supervisor import ClusterSupervisor, WorkerHandle

__all__ = [
    "ClusterControlError",
    "ClusterSupervisor",
    "ClusterThread",
    "RendezvousRing",
    "Router",
    "WorkerHandle",
    "rendezvous_score",
]
