"""Multi-worker scaling load generator.

Extends the single-server load generator
(:mod:`repro.serve.loadgen`) to the cluster tier: for each worker
count in *workers*, start a fresh :class:`~repro.serve.cluster.router
.ClusterThread` and replay the trace through S concurrent sessions
(one client connection and one session per thread, STEP_BLOCK frames
of *block* records).  Every session replays the same records in
order, so each one's served hit count must equal the offline
engine's -- bit-for-bit, per session, at every fleet size.  That is
the cluster parity gate: affinity, request-id rewriting and response
routing cannot silently corrupt a stream without tripping it.

The report (``schema`` 1, ``kind: cluster_scaling``) carries one
point per worker count -- aggregate records/s, pooled latency
percentiles, per-session parity -- plus the aggregate speedup of the
largest fleet over the single-worker point.  ``min_scaling`` gates
the speedup (``scaling_ok``); leave it None on machines whose core
count cannot possibly show scaling (the report records
``cpu_count`` so a reader can tell why a local run stays flat).

:func:`repro.harness.bench.append_cluster_history` turns the report
into a ``BENCH_history.jsonl`` record so ``repro bench diff`` gates
cluster throughput regressions alongside the kernel families.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional, Sequence

from repro.core.spec import DelayedSpec, PredictorSpec
from repro.serve.client import ServeClient
from repro.serve.cluster.router import ClusterThread
from repro.serve.loadgen import percentile

__all__ = ["run_scaling_loadgen", "render_scaling"]

SCALING_SCHEMA = 1

_MASK32 = 0xFFFFFFFF


def _replay_session(host: str, port: int, spec: PredictorSpec,
                    window: int, pcs, values, block: int,
                    out: dict, key: int) -> None:
    """One session thread: open, replay batched, record hits and
    per-request latencies (errors travel back through *out*)."""
    try:
        with ServeClient(host, port, reconnect=5) as client:
            session = client.open_session(spec, window)
            hits = 0
            latencies = []
            for start in range(0, len(pcs), block):
                started = time.perf_counter()
                _, chunk_hits = client.step_block(
                    session, pcs[start:start + block],
                    values[start:start + block])
                latencies.append(time.perf_counter() - started)
                hits += chunk_hits
            stats = client.close_session(session)
            if stats["hits"] != hits:
                raise RuntimeError(
                    f"session {session}: client counted {hits} hits, "
                    f"session reported {stats['hits']}")
            out[key] = {"session": session, "hits": hits,
                        "latencies": latencies,
                        "reconnects": client.reconnects}
    except Exception as exc:  # noqa: BLE001 - reported by the caller
        out[key] = {"error": f"{type(exc).__name__}: {exc}"}


def _run_point(n_workers: int, spec: PredictorSpec, window: int,
               pcs, values, block: int, sessions: int,
               state_dir: Optional[str], **worker_kwargs) -> dict:
    with ClusterThread(workers=n_workers, state_dir=state_dir,
                       **worker_kwargs) as cluster:
        out: dict = {}
        threads = [
            threading.Thread(
                target=_replay_session,
                args=("127.0.0.1", cluster.port, spec, window, pcs,
                      values, block, out, key))
            for key in range(sessions)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        report = cluster.router.cluster_report()
    errors = [f"session thread {key}: {res['error']}"
              for key, res in sorted(out.items()) if "error" in res]
    if errors:
        raise RuntimeError("; ".join(errors))
    pooled = sorted(lat for res in out.values()
                    for lat in res["latencies"])
    total_records = len(pcs) * sessions
    return {
        "workers": n_workers,
        "sessions": sessions,
        "records": total_records,
        "seconds": round(elapsed, 6),
        "records_per_s": round(total_records / elapsed, 1)
        if elapsed else 0.0,
        "latency": {
            "p50_ms": round(percentile(pooled, 50) * 1e3, 4),
            "p90_ms": round(percentile(pooled, 90) * 1e3, 4),
            "p99_ms": round(percentile(pooled, 99) * 1e3, 4),
        },
        "session_hits": {str(res["session"]): res["hits"]
                         for res in out.values()},
        "reconnects": sum(res["reconnects"] for res in out.values()),
        "migrations_total": report["migrations_total"],
        "sessions_lost_total": report["sessions_lost_total"],
    }


def run_scaling_loadgen(spec: PredictorSpec, trace,
                        workers: Sequence[int] = (1, 2, 3),
                        sessions: int = 4, window: int = 0,
                        block: int = 256,
                        state_dir: Optional[str] = None,
                        min_scaling: Optional[float] = None,
                        **worker_kwargs) -> dict:
    """Replay *trace* through *sessions* concurrent sessions at each
    fleet size in *workers*; see the module docstring for the report
    shape and gates."""
    counts = sorted(set(int(n) for n in workers))
    if not counts or counts[0] < 1:
        raise ValueError(f"workers must be >= 1, got {list(workers)}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    pcs = [int(pc) & _MASK32 for pc in trace.pcs]
    values = [int(v) & _MASK32 for v in trace.values]

    from repro.harness.simulate import measure_accuracy
    offline_spec = DelayedSpec(spec, window) if window else spec
    offline_hits = measure_accuracy(offline_spec, trace).correct

    points = []
    parity_ok = True
    for n_workers in counts:
        point = _run_point(n_workers, spec, window, pcs, values, block,
                           sessions, state_dir, **worker_kwargs)
        point["offline_hits"] = offline_hits
        point["parity_ok"] = all(
            hits == offline_hits
            for hits in point["session_hits"].values())
        parity_ok = parity_ok and point["parity_ok"]
        points.append(point)

    report = {
        "schema": SCALING_SCHEMA,
        "kind": "cluster_scaling",
        "trace": trace.name,
        "records": len(pcs),
        "spec": spec.name,
        "spec_config": spec.to_config(),
        "window": window,
        "block": block,
        "sessions": sessions,
        "cpu_count": os.cpu_count(),
        "points": points,
        "parity_ok": parity_ok,
    }
    if len(points) > 1:
        base_rate = points[0]["records_per_s"]
        best = max(points[1:], key=lambda p: p["records_per_s"])
        speedup = (best["records_per_s"] / base_rate) if base_rate else 0.0
        report["speedup"] = round(speedup, 2)
        report["speedup_workers"] = best["workers"]
        report["min_scaling"] = min_scaling
        if min_scaling is not None:
            report["scaling_ok"] = speedup >= min_scaling
    return report


def render_scaling(report: dict) -> str:
    """Human-readable scaling table."""
    from repro.harness.report import format_table
    rows = [[f"{p['workers']}", f"{p['records']:,}",
             f"{p['records_per_s']:,.1f}",
             f"{p['latency']['p50_ms']:.3f}",
             f"{p['latency']['p99_ms']:.3f}",
             "ok" if p["parity_ok"] else "MISMATCH"]
            for p in report["points"]]
    lines = [format_table(
        ["workers", "records", "rec/s", "p50 ms", "p99 ms", "parity"],
        rows,
        title=(f"cluster scaling: {report['spec']} on "
               f"{report['trace']} x{report['sessions']} sessions"))]
    if "speedup" in report:
        gate = ""
        if report.get("min_scaling") is not None:
            verdict = "PASS" if report.get("scaling_ok") else "FAIL"
            gate = (f" (gate >= {report['min_scaling']:g}x: {verdict})")
        lines.append(
            f"speedup: {report['speedup']:g}x at "
            f"{report['speedup_workers']} workers vs 1{gate}")
    return "\n".join(lines) + "\n"
