"""Worker-process lifecycle for the serve cluster.

:class:`ClusterSupervisor` forks N :class:`~repro.serve.server
.PredictionServer` processes (``multiprocessing`` *spawn* context by
default -- safe under threaded parents and identical to what a k8s pod
exec does) and tracks each through a :class:`WorkerHandle`.  Every
worker:

- binds an ephemeral data port and an ephemeral observability port,
  reported back through a pipe before the supervisor's ``start``
  returns;
- runs with ``adopt_arenas=False`` against the shared state
  directory -- ownership of arenas is dictated by the router with
  ADOPT_SESSION frames, never grabbed at startup (two workers racing
  to adopt the same arena would double-serve a session);
- drains gracefully on SIGTERM exactly like ``repro serve`` (all
  accepted frames answered, spillable sessions checkpointed to their
  arenas), then ships its final stats, telemetry events and metrics
  snapshot back through the pipe.

The supervisor stitches each drained worker's telemetry into the
parent process exactly the way the sweep executor stitches cell
workers (:func:`repro.harness.executor.forward_worker_events` +
``registry().merge_snapshot``), so one telemetry run and one
``/metrics`` registry cover the whole fleet.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ClusterSupervisor", "WorkerHandle"]

#: Fields a worker process accepts; anything else in ``worker_kwargs``
#: is rejected up front (a typo'd knob must not silently vanish into
#: a child process).
_WORKER_KWARGS = frozenset({
    "host", "shards", "max_batch", "max_delay", "queue_depth",
    "request_timeout", "slo_interval", "slow_k", "state_dir",
    "max_resident",
})


@dataclass
class WorkerHandle:
    """One worker process the supervisor is (or was) responsible for."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: "multiprocessing.connection.Connection"
    pid: int = 0
    port: int = 0
    obs_port: int = 0
    started_at: float = 0.0
    #: True once the supervisor deliberately asked it to stop --
    #: distinguishes a drain from a crash in :meth:`ClusterSupervisor
    #: .reap`.
    requested_stop: bool = False
    #: The drained worker's final stats dict, once collected.
    final: Optional[dict] = None
    collected: bool = False
    restarts: int = field(default=0)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode


def _worker_main(index: int, kwargs: dict, conn) -> None:
    """Child-process entry point (module-level so it spawns).

    Builds the server, reports its ports, serves until SIGTERM/SIGINT,
    then drains and ships ``(stats, events, metrics)`` home.
    """
    import asyncio

    from repro.telemetry.registry import registry
    from repro.telemetry.run import collecting_run, detach_run

    # A fork-context child inherits the parent's active run handle;
    # drop it so this process's events go only through the collector.
    detach_run()
    registry().reset()
    with collecting_run(f"cluster-worker-{index}") as collector:
        stats = asyncio.run(_worker_async(index, kwargs, conn))
    try:
        conn.send({"event": "drained", "worker": index, "stats": stats,
                   "events": collector.events,
                   "metrics": registry().snapshot()})
    except (BrokenPipeError, OSError):
        pass
    conn.close()


async def _worker_async(index: int, kwargs: dict, conn) -> dict:
    import asyncio

    from repro.serve.server import PredictionServer

    server = PredictionServer(port=0, obs_port=0, adopt_arenas=False,
                              **kwargs)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    conn.send({"event": "listening", "worker": index,
               "pid": os.getpid(), "port": server.port,
               "obs_port": server.obs_port})
    await stop.wait()
    return await server.stop()


class ClusterSupervisor:
    """Spawn, watch, drain and account for N serve workers."""

    def __init__(self, workers: int, mp_context: str = "spawn",
                 start_timeout: float = 90.0, **worker_kwargs):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        unknown = set(worker_kwargs) - _WORKER_KWARGS
        if unknown:
            raise TypeError(
                f"unknown worker kwargs: {sorted(unknown)} "
                f"(accepted: {sorted(_WORKER_KWARGS)})")
        self.n_workers = workers
        self.worker_kwargs = dict(worker_kwargs)
        self.start_timeout = start_timeout
        self._ctx = multiprocessing.get_context(mp_context)
        self.handles: Dict[int, WorkerHandle] = {}
        #: Drained workers' final stats, in collection order.
        self.finals: List[dict] = []

    # ------------------------------------------------------------ start

    def start(self) -> "ClusterSupervisor":
        """Spawn every worker, then wait for all of them to listen."""
        for index in range(self.n_workers):
            self._spawn(index)
        deadline = time.monotonic() + self.start_timeout
        for handle in self.handles.values():
            self._await_listening(handle, deadline)
        return self

    def _spawn(self, index: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, self.worker_kwargs, child_conn),
            name=f"repro-serve-worker-{index}", daemon=True)
        restarts = (self.handles[index].restarts + 1
                    if index in self.handles else 0)
        process.start()
        child_conn.close()
        handle = WorkerHandle(index=index, process=process,
                              conn=parent_conn,
                              started_at=time.time(),
                              restarts=restarts)
        self.handles[index] = handle
        return handle

    def _await_listening(self, handle: WorkerHandle, deadline: float,
                         fatal: bool = True) -> None:
        """Wait for one worker's ``listening`` report.  With *fatal*
        (initial startup) a failure tears the whole fleet down; a
        replacement worker failing (``fatal=False``) only kills
        itself -- the rest of the fleet keeps serving."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.conn.poll(remaining):
                if fatal:
                    self.stop()
                else:
                    self._signal(handle)
                    self._collect(handle)
                raise RuntimeError(
                    f"worker {handle.index} did not report listening "
                    f"within {self.start_timeout:g}s "
                    f"(exitcode={handle.exitcode})")
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                exitcode = handle.exitcode
                if fatal:
                    self.stop()
                else:
                    self._collect(handle)
                raise RuntimeError(
                    f"worker {handle.index} died during startup "
                    f"(exitcode={exitcode})") from None
            if message.get("event") == "listening":
                handle.pid = message["pid"]
                handle.port = message["port"]
                handle.obs_port = message["obs_port"]
                return

    def restart_worker(self, index: int) -> WorkerHandle:
        """Spawn a replacement into a dead worker's slot (same ring
        key, so its old sessions rendezvous straight back to it)."""
        old = self.handles.get(index)
        if old is not None and old.alive:
            raise RuntimeError(f"worker {index} is still alive")
        if old is not None:
            self._collect(old)
        handle = self._spawn(index)
        self._await_listening(
            handle, time.monotonic() + self.start_timeout, fatal=False)
        return handle

    # ------------------------------------------------------------- stop

    def stop_worker(self, index: int, timeout: float = 60.0) -> \
            Optional[dict]:
        """SIGTERM one worker, wait for its drain, stitch its
        telemetry; returns its final stats (None if it died hard)."""
        handle = self.handles[index]
        handle.requested_stop = True
        self._signal(handle)
        return self._collect(handle, timeout=timeout)

    def stop(self, timeout: float = 60.0) -> List[dict]:
        """SIGTERM the whole fleet (in parallel), collect every drain."""
        live = [h for h in self.handles.values() if not h.collected]
        for handle in live:
            handle.requested_stop = True
            self._signal(handle)
        stats = []
        for handle in live:
            final = self._collect(handle, timeout=timeout)
            if final is not None:
                stats.append(final)
        return stats

    def reap(self) -> List[WorkerHandle]:
        """Handles of workers that died *without* being asked to stop
        (crash / SIGKILL), newly observed since the last call."""
        dead = []
        for handle in self.handles.values():
            if (not handle.alive and not handle.requested_stop
                    and not handle.collected):
                self._collect(handle)
                dead.append(handle)
        return dead

    # ---------------------------------------------------------- plumbing

    def _signal(self, handle: WorkerHandle) -> None:
        if handle.alive:
            try:
                os.kill(handle.process.pid, signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass

    def _collect(self, handle: WorkerHandle,
                 timeout: float = 5.0) -> Optional[dict]:
        """Read the pipe until the worker exits (so a large drained
        message never deadlocks the child in ``send``), then record
        the final stats and stitch the worker's telemetry into this
        process.  Idempotent."""
        if handle.collected:
            return handle.final
        deadline = time.monotonic() + timeout
        message = None
        try:
            while True:
                if handle.conn.poll(0.05 if handle.alive else 0):
                    received = handle.conn.recv()
                    if received.get("event") == "drained":
                        message = received
                    continue
                if not handle.alive or time.monotonic() > deadline:
                    break
        except (EOFError, OSError):
            pass
        handle.process.join(max(0.1, deadline - time.monotonic()))
        if handle.alive:
            handle.process.terminate()
            handle.process.join(5)
        handle.collected = True
        handle.conn.close()
        if message is None:
            return None
        handle.final = message.get("stats")
        if handle.final is not None:
            self.finals.append(handle.final)
        events = message.get("events") or []
        if events:
            from repro.harness.executor import forward_worker_events
            forward_worker_events(handle.index, events)
        metrics = message.get("metrics")
        if metrics:
            from repro.telemetry.registry import registry
            registry().merge_snapshot(metrics)
        return handle.final

    # ---------------------------------------------------------- reports

    def describe(self) -> List[dict]:
        return [
            {"worker": h.index, "pid": h.pid, "port": h.port,
             "obs_port": h.obs_port, "alive": h.alive,
             "exitcode": h.exitcode, "restarts": h.restarts,
             "requested_stop": h.requested_stop,
             "uptime_s": (round(time.time() - h.started_at, 3)
                          if h.alive else 0.0)}
            for h in sorted(self.handles.values(),
                            key=lambda h: h.index)
        ]

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
