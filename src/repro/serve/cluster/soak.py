"""Sustained-load soak harness with an SLO-burn gate.

Where the scaling load generator (:mod:`repro.serve.cluster.loadgen`)
measures throughput at several fleet sizes, the soak harness holds
*one* fleet size under sustained concurrency for a wall-clock
duration and watches the autoscaling telemetry the whole time: a
poller thread samples the router's ``/scale`` signals (sessions per
worker, p99 step latency, deepest queue, worst sustained SLO burn)
and ``/slo`` alert state every few seconds while S session threads
replay the trace in a loop, each pass through a *fresh* session whose
served hit count must equal the offline engine's (the same
bit-for-bit parity gate the scaling runs use).

The verdict is the multi-window burn-rate rule, not a point-in-time
spike test: the run fails only when some sample's *sustained* burn --
``min(fast_window, slow_window)``, exactly what the alerting rule and
the ``/scale`` adapter emit -- reaches ``max_burn``, or when parity
breaks, or a session thread errors out.  That makes the harness a
CI-grade pass/fail for "would the autoscaler have had to bail us
out", cheap enough to run for a couple of minutes per push.

The report (``kind: cluster_soak``) carries every telemetry sample,
pass counts, pooled latency percentiles and a bounded dump of the
router's trace store (the cross-process spans of the most recent
requests) so a failed run ships its own forensics.
:func:`repro.harness.bench.append_soak_history` files it in
``BENCH_history.jsonl``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional

from repro.core.spec import DelayedSpec, PredictorSpec
from repro.serve.client import ServeClient
from repro.serve.cluster.router import ClusterThread
from repro.serve.loadgen import percentile

__all__ = ["run_soak", "render_soak"]

SOAK_SCHEMA = 1

_MASK32 = 0xFFFFFFFF


def _soak_session(host: str, port: int, spec: PredictorSpec,
                  window: int, pcs, values, block: int,
                  offline_hits: int, deadline: float, out: dict,
                  key: int) -> None:
    """One sustained session thread: replay the trace through fresh
    sessions until the deadline, checking parity after every pass."""
    passes = 0
    mismatches = 0
    latencies: List[float] = []
    try:
        with ServeClient(host, port, reconnect=5) as client:
            while time.monotonic() < deadline:
                session = client.open_session(spec, window)
                hits = 0
                for start in range(0, len(pcs), block):
                    started = time.perf_counter()
                    _, chunk_hits = client.step_block(
                        session, pcs[start:start + block],
                        values[start:start + block])
                    latencies.append(time.perf_counter() - started)
                    hits += chunk_hits
                client.close_session(session)
                passes += 1
                if hits != offline_hits:
                    mismatches += 1
            out[key] = {"passes": passes, "mismatches": mismatches,
                        "latencies": latencies,
                        "reconnects": client.reconnects}
    except Exception as exc:  # noqa: BLE001 - reported by the caller
        out[key] = {"passes": passes, "mismatches": mismatches,
                    "latencies": latencies,
                    "error": f"{type(exc).__name__}: {exc}"}


def _poll_telemetry(cluster: ClusterThread, interval_s: float,
                    stop: threading.Event, samples: List[dict]) -> None:
    """Sample the router's /scale signals until told to stop."""
    while not stop.is_set():
        try:
            report = cluster.call(cluster.router.scale_report())
            samples.append({
                "t_s": round(time.monotonic(), 3),
                "signals": report["signals"],
                "alerts": report["alerts"],
                "workers_alive": report["workers_alive"],
            })
        except Exception as exc:  # noqa: BLE001 - soak keeps running
            samples.append({"t_s": round(time.monotonic(), 3),
                            "error": f"{type(exc).__name__}: {exc}"})
        stop.wait(interval_s)


def run_soak(spec: PredictorSpec, trace, workers: int = 2,
             sessions: int = 4, duration_s: float = 60.0,
             window: int = 0, block: int = 256,
             state_dir: Optional[str] = None, max_burn: float = 2.0,
             poll_interval_s: float = 2.0,
             trace_dump_limit: int = 256, **worker_kwargs) -> dict:
    """Hold a *workers*-worker cluster under *sessions* concurrent
    replay loops for *duration_s* seconds; see the module docstring
    for the report shape and the pass/fail rule."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if max_burn <= 0:
        raise ValueError(f"max_burn must be > 0, got {max_burn}")
    pcs = [int(pc) & _MASK32 for pc in trace.pcs]
    values = [int(v) & _MASK32 for v in trace.values]

    from repro.harness.simulate import measure_accuracy
    offline_spec = DelayedSpec(spec, window) if window else spec
    offline_hits = measure_accuracy(offline_spec, trace).correct

    samples: List[dict] = []
    out: dict = {}
    with ClusterThread(workers=workers, state_dir=state_dir,
                       **worker_kwargs) as cluster:
        stop_poll = threading.Event()
        poller = threading.Thread(
            target=_poll_telemetry,
            args=(cluster, poll_interval_s, stop_poll, samples),
            daemon=True)
        deadline = time.monotonic() + duration_s
        threads = [
            threading.Thread(
                target=_soak_session,
                args=("127.0.0.1", cluster.port, spec, window, pcs,
                      values, block, offline_hits, deadline, out, key))
            for key in range(sessions)
        ]
        started = time.perf_counter()
        poller.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop_poll.set()
        poller.join(timeout=poll_interval_s + 10.0)
        # Final forensics while the fleet is still up: one last
        # telemetry sample and the router's recent trace spans.
        try:
            final = cluster.call(cluster.router.scale_report())
            samples.append({"t_s": round(time.monotonic(), 3),
                            "signals": final["signals"],
                            "alerts": final["alerts"],
                            "workers_alive": final["workers_alive"],
                            "final": True})
        except Exception as exc:  # noqa: BLE001
            samples.append({"t_s": round(time.monotonic(), 3),
                            "error": f"{type(exc).__name__}: {exc}"})
        trace_dump = cluster.router.trace_dump(trace_dump_limit)
        cluster_stats = cluster.router.cluster_report()

    errors = [f"session thread {key}: {res['error']}"
              for key, res in sorted(out.items()) if "error" in res]
    passes = sum(res.get("passes", 0) for res in out.values())
    mismatches = sum(res.get("mismatches", 0) for res in out.values())
    pooled = sorted(lat for res in out.values()
                    for lat in res.get("latencies", []))
    burns = [s["signals"]["slo_burn_rate"] for s in samples
             if "signals" in s]
    peak_burn = max(burns) if burns else 0.0
    burn_breaches = sum(1 for b in burns if b >= max_burn)
    alerts = sorted({alert for s in samples
                     for alert in s.get("alerts", [])})
    parity_ok = mismatches == 0 and passes > 0
    slo_ok = burn_breaches == 0
    report = {
        "schema": SOAK_SCHEMA,
        "kind": "cluster_soak",
        "trace": trace.name,
        "records": len(pcs),
        "spec": spec.name,
        "spec_config": spec.to_config(),
        "window": window,
        "block": block,
        "workers": workers,
        "sessions": sessions,
        "duration_s": round(duration_s, 3),
        "seconds": round(elapsed, 3),
        "cpu_count": os.cpu_count(),
        "passes": passes,
        "records_total": passes * len(pcs),
        "records_per_s": (round(passes * len(pcs) / elapsed, 1)
                          if elapsed else 0.0),
        "offline_hits": offline_hits,
        "mismatched_passes": mismatches,
        "parity_ok": parity_ok,
        "reconnects": sum(res.get("reconnects", 0)
                          for res in out.values()),
        "latency": {
            "count": len(pooled),
            "p50_ms": (round(percentile(pooled, 50) * 1e3, 4)
                       if pooled else 0.0),
            "p99_ms": (round(percentile(pooled, 99) * 1e3, 4)
                       if pooled else 0.0),
        },
        "max_burn": max_burn,
        "peak_burn": round(peak_burn, 4),
        "burn_breaches": burn_breaches,
        "slo_ok": slo_ok,
        "alerts": alerts,
        "samples": samples,
        "errors": errors,
        "migrations_total": cluster_stats["migrations_total"],
        "sessions_lost_total": cluster_stats["sessions_lost_total"],
        "trace_dump": trace_dump,
        "soak_ok": parity_ok and slo_ok and not errors,
    }
    return report


def render_soak(report: dict) -> str:
    """Human-readable soak verdict."""
    lines = [
        (f"cluster soak: {report['spec']} on {report['trace']} -- "
         f"{report['workers']} workers x{report['sessions']} sessions, "
         f"{report['seconds']:.1f}s"),
        (f"  passes: {report['passes']} "
         f"({report['records_total']:,} records, "
         f"{report['records_per_s']:,.1f} rec/s), "
         f"reconnects: {report['reconnects']}"),
        (f"  latency: p50 {report['latency']['p50_ms']:.3f} ms, "
         f"p99 {report['latency']['p99_ms']:.3f} ms"),
        (f"  parity: "
         f"{'ok' if report['parity_ok'] else 'MISMATCH'} "
         f"({report['mismatched_passes']} mismatched passes)"),
        (f"  slo burn: peak {report['peak_burn']:g} "
         f"(gate < {report['max_burn']:g}: "
         f"{'PASS' if report['slo_ok'] else 'FAIL'}, "
         f"{report['burn_breaches']} breaching samples)"),
    ]
    if report["alerts"]:
        lines.append(f"  alerts seen: {', '.join(report['alerts'])}")
    for error in report["errors"]:
        lines.append(f"  error: {error}")
    lines.append(f"soak: {'PASS' if report['soak_ok'] else 'FAIL'}")
    return "\n".join(lines) + "\n"
