"""Rendezvous (highest-random-weight) hashing for session placement.

The router assigns every session id to a worker with HRW hashing:
each (worker, session) pair gets a deterministic 64-bit score from
blake2b, and the session lands on the highest-scoring worker.  The
properties the cluster leans on:

- **Stability.** The score is a pure function of the worker key and
  the session id -- no seeding, no insertion order, no process state.
  A restarted router recomputes exactly the placement the previous
  one used, so adopted arenas go back to the workers whose kernels
  are warm for them.
- **Uniformity.** blake2b scores are uniform, so load spreads evenly
  across workers (tests bound the max/min ratio over 10k ids).
- **Minimal disruption.** Removing a worker re-homes only the
  sessions it owned (every other pair's argmax is unchanged); adding
  one steals ~1/(n+1) of each existing worker's sessions and nothing
  else moves.  This is what makes hot migration affordable: a scale
  event touches the theoretical minimum number of arenas.

Worker keys are small ints (the supervisor's stable slot indices), so
a replacement worker restarted into slot *i* inherits slot *i*'s
placement -- deliberate: its predecessor's arenas come home.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Set

__all__ = ["RendezvousRing", "rendezvous_score"]

_EMPTY: FrozenSet[int] = frozenset()


def rendezvous_score(worker: int, session_id: int) -> int:
    """The deterministic 64-bit HRW score of one (worker, session)
    pair."""
    digest = hashlib.blake2b(b"%d:%d" % (worker, session_id),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RendezvousRing:
    """The set of live workers and the HRW assignment over them."""

    def __init__(self, workers: Iterable[int] = ()):
        self._workers: Set[int] = set(workers)

    @property
    def workers(self) -> List[int]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: int) -> bool:
        return worker in self._workers

    def add(self, worker: int) -> None:
        self._workers.add(worker)

    def discard(self, worker: int) -> None:
        self._workers.discard(worker)

    def assign(self, session_id: int,
               exclude: FrozenSet[int] = _EMPTY) -> int:
        """The owning worker for *session_id* among live workers not in
        *exclude*; raises :class:`LookupError` when none qualify."""
        best = -1
        best_score = -1
        for worker in self._workers:
            if worker in exclude:
                continue
            score = rendezvous_score(worker, session_id)
            # Ties (astronomically unlikely) break toward the higher
            # slot index so the choice stays deterministic everywhere.
            if score > best_score or (score == best_score
                                      and worker > best):
                best, best_score = worker, score
        if best < 0:
            raise LookupError(
                f"no live worker available for session {session_id} "
                f"(workers={sorted(self._workers)}, "
                f"excluded={sorted(exclude)})")
        return best

    def assignments(self, session_ids: Iterable[int],
                    exclude: FrozenSet[int] = _EMPTY) -> Dict[int, int]:
        """Batch :meth:`assign` over many session ids."""
        return {sid: self.assign(sid, exclude) for sid in session_ids}
