"""The session-affine router: one front door for N serve workers.

The router is an asyncio TCP proxy speaking the same binary protocol
as :class:`~repro.serve.server.PredictionServer`.  Clients connect to
it exactly as they would to a single server; behind it, a
:class:`~repro.serve.cluster.supervisor.ClusterSupervisor` fleet of
worker processes does the actual predicting.  Three invariants drive
the design:

**Session affinity.**  Every session id maps to one worker via
rendezvous hashing (:mod:`repro.serve.cluster.ring`) over the
supervisor's stable slot indices.  A client's OPEN_SESSION is
rewritten in place to OPEN_SESSION_AS with a router-allocated globally
unique id (the worker's own id counter never decides anything), so ids
are unique across the fleet and the ring can always recompute who owns
what.

**Zero-copy proxying.**  Frames are forwarded as raw byte payloads.
The router peeks exactly three header fields at fixed offsets --
version, type, request id -- plus the leading ``u64`` session id of
session-scoped bodies; bodies are never decoded or re-encoded.  The
client's request id is patched to a router-global backend request id
on the way in and restored on the way out, which is what lets many
client connections multiplex over one connection per worker while
responses still come back to the right requester in FIFO order per
client (response slots are enqueued before the frame is forwarded,
exactly like the single-process server's writer queue).

**No dropped or reordered frames.**  Hot migration parks a session
(new frames queue in arrival order), sends RELEASE_SESSION to the old
owner -- which rides the worker's per-session FIFO, so every in-flight
STEP completes and is answered first -- then ADOPT_SESSION to the new
owner, then flushes the parked frames in order.  When a worker dies,
the router re-homes its sessions: it waits for the process to finish
(a SIGTERM drain spills arenas *after* closing its sockets, so the
join is what makes the arenas visible), has the ring pick new owners,
re-sends the dead connection's in-flight frames in their original
order, and only then flushes parked frames -- per-session order is
preserved end to end.  Sessions with no arena (never snapshotted when
the worker was SIGKILLed, or no state dir configured) are counted in
``repro_cluster_sessions_lost_total`` and answered UNKNOWN_SESSION,
never silently dropped.

:class:`ClusterThread` hosts supervisor + router behind a blocking
API mirroring :class:`~repro.serve.server.ServerThread`, for tests,
loadgen, and the ``repro cluster serve`` CLI.
"""

from __future__ import annotations

import asyncio
import struct
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.serve import protocol
from repro.serve.cluster.aggregate import (http_get, http_get_json,
                                           merge_prometheus_texts)
from repro.serve.cluster.ring import RendezvousRing
from repro.serve.cluster.supervisor import ClusterSupervisor
from repro.serve.obs import ObservabilityServer
from repro.serve.tracing import (RouterTrace, SlowRequestSampler,
                                 TraceStore, format_trace_id,
                                 new_trace_id, parse_trace_id)
from repro.telemetry.registry import registry

__all__ = ["Router", "ClusterThread", "ClusterControlError"]

_LEN = struct.Struct("!I")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")

_LATENCY_BUCKETS = (.0001, .0005, .001, .005, .025, .1, .5, 2.5)

#: Frame types whose body starts with a u64 session id.
_SESSION_TYPES = frozenset({
    protocol.FrameType.PREDICT, protocol.FrameType.OUTCOME,
    protocol.FrameType.STEP, protocol.FrameType.STEP_BLOCK,
    protocol.FrameType.FLUSH, protocol.FrameType.STATS,
    protocol.FrameType.CLOSE_SESSION, protocol.FrameType.SNAPSHOT,
})

#: Router-internal control frames; a client sending one is confused.
_CONTROL_TYPES = frozenset({
    protocol.FrameType.ADOPT_SESSION, protocol.FrameType.RELEASE_SESSION,
    protocol.FrameType.OPEN_SESSION_AS,
})

#: Latencies of these types feed the rolling percentile window.
_DATA_TYPES = frozenset({
    protocol.FrameType.PREDICT, protocol.FrameType.OUTCOME,
    protocol.FrameType.STEP, protocol.FrameType.STEP_BLOCK,
})


class ClusterControlError(Exception):
    """A worker answered a router control frame with an ERROR."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{_code_name(code)}] {message}")
        self.code = code
        self.message = message


class _ClusterMetrics:
    """Registry handles for the router tier (``repro_cluster_*``)."""

    def __init__(self):
        reg = registry()
        self.workers = reg.gauge(
            "repro_cluster_workers", "Worker slots the router manages.")
        self.workers_alive = reg.gauge(
            "repro_cluster_workers_alive",
            "Worker backends currently connected.")
        self.sessions = reg.gauge(
            "repro_cluster_sessions",
            "Sessions the router is tracking across the fleet.")
        self.parked = reg.gauge(
            "repro_cluster_parked_sessions",
            "Sessions parked mid-migration or mid-failover.")
        self.connections = reg.gauge(
            "repro_cluster_connections_open",
            "Client connections open at the router.")
        self.frames = reg.counter(
            "repro_cluster_frames_proxied_total",
            "Client frames accepted by the router, by frame type.",
            labels=("type",))
        self.records = reg.counter(
            "repro_cluster_records_total",
            "Prediction records proxied to workers (STEP/STEP_BLOCK).")
        self.hits = reg.counter(
            "repro_cluster_hits_total",
            "Correct predictions in proxied responses.")
        self.migrations = reg.counter(
            "repro_cluster_migrations_total",
            "Sessions moved between workers, by reason.",
            labels=("reason",))
        self.sessions_lost = reg.counter(
            "repro_cluster_sessions_lost_total",
            "Sessions lost with a dead worker (no arena to re-home).")
        self.restarts = reg.counter(
            "repro_cluster_worker_restarts_total",
            "Replacement workers spawned into dead slots.")
        self.errors = reg.counter(
            "repro_cluster_errors_total",
            "Error responses synthesized by the router, by code.",
            labels=("code",))
        self.request_seconds = reg.histogram(
            "repro_cluster_request_seconds",
            "Proxied request latency (client frame read to response "
            "written).", buckets=_LATENCY_BUCKETS, labels=("type",))


class _Entry:
    """One in-flight client (or control) frame."""

    __slots__ = ("payload", "conn", "future", "frame_type", "session_id",
                 "client_request_id", "respond_open", "kind", "records",
                 "brid", "version", "trace_id", "t_recv", "trace")

    def __init__(self, payload, conn, future, frame_type, version,
                 trace_id, client_request_id, session_id=0,
                 respond_open=False, kind=None, records=0):
        self.payload = payload
        self.conn = conn
        self.future = future
        self.frame_type = frame_type
        self.version = version
        self.trace_id = trace_id
        self.client_request_id = client_request_id
        self.session_id = session_id
        self.respond_open = respond_open
        self.kind = kind
        self.records = records
        self.brid = 0
        self.t_recv = time.monotonic()
        #: Router-side stage stamps; None for router-internal control
        #: frames and synthesized error slots (client frames only).
        self.trace: Optional[RouterTrace] = None


class _ClientConn:
    __slots__ = ("reader", "writer", "responses", "reader_task",
                 "writer_task")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.responses: asyncio.Queue = asyncio.Queue()
        self.reader_task: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None


class _Backend:
    """The router's one connection to one worker process."""

    __slots__ = ("index", "host", "port", "obs_port", "pid", "reader",
                 "writer", "reader_task", "pending", "alive", "lost")

    def __init__(self, index, host, port, obs_port, pid, reader, writer):
        self.index = index
        self.host = host
        self.port = port
        self.obs_port = obs_port
        self.pid = pid
        self.reader = reader
        self.writer = writer
        self.reader_task: Optional[asyncio.Task] = None
        #: brid -> _Entry, insertion-ordered == send-ordered.
        self.pending: Dict[int, _Entry] = {}
        self.alive = True
        self.lost = False


class Router:
    """The cluster's client-facing listener and placement brain."""

    def __init__(self, supervisor: ClusterSupervisor,
                 host: str = "127.0.0.1", port: int = 0,
                 obs_port: Optional[int] = None,
                 obs_host: str = "127.0.0.1",
                 request_timeout: float = 60.0,
                 auto_restart: bool = True,
                 tick_interval: float = 0.5,
                 adopt_retries: int = 20,
                 adopt_retry_delay: float = 0.05,
                 slow_k: int = 32,
                 trace_capacity: int = 4096):
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.auto_restart = auto_restart
        self.tick_interval = tick_interval
        self.adopt_retries = adopt_retries
        self.adopt_retry_delay = adopt_retry_delay
        self.state_dir = supervisor.worker_kwargs.get("state_dir")
        worker_host = supervisor.worker_kwargs.get("host", "127.0.0.1")
        self._worker_host = ("127.0.0.1"
                            if worker_host in ("0.0.0.0", "::", "")
                            else worker_host)
        self.ring = RendezvousRing()
        self.metrics = _ClusterMetrics()
        self._backends: Dict[int, _Backend] = {}
        self._clients: List[_ClientConn] = []
        #: session id -> owning worker slot.
        self._sessions: Dict[int, int] = {}
        #: Parked sessions: sid -> queued entries awaiting re-home.
        self._parked: Dict[int, List[_Entry]] = {}
        self._next_session_id = 1
        self._next_brid = 1
        self._listener: Optional[asyncio.base_events.Server] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        self._started_at = 0.0
        self._latencies: deque = deque(maxlen=4096)
        # Router-side tracing: client-experienced slow sample plus the
        # bounded span store behind /trace (same machinery the workers
        # run, keyed by the same u64 trace ids).
        self.slow_sampler = SlowRequestSampler(slow_k)
        self.trace_store = TraceStore(trace_capacity)
        # Counters mirrored as plain ints for JSON reports.
        self.frames_proxied = 0
        self.records_proxied = 0
        self.hits_proxied = 0
        self.migrations = 0
        self.sessions_lost = 0
        self.adopted_at_start = 0
        self.obs_port: Optional[int] = obs_port
        self._obs = (_ClusterObs(self, obs_host, obs_port)
                     if obs_port is not None else None)

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if not self.supervisor.handles:
            raise RuntimeError("supervisor has no workers; call "
                               "supervisor.start() before Router.start()")
        for handle in sorted(self.supervisor.handles.values(),
                             key=lambda h: h.index):
            await self._attach_backend(handle)
        await self._adopt_existing()
        self._listener = await asyncio.start_server(
            self._on_client, self.host, self.port)
        self.port = self._listener.sockets[0].getsockname()[1]
        if self._obs is not None:
            await self._obs.start()
            self.obs_port = self._obs.port
        self._tick_task = asyncio.ensure_future(self._tick_loop())
        self.metrics.workers.set(self.supervisor.n_workers)
        self._started_at = time.time()

    async def stop(self) -> dict:
        """Drain clients, then detach from the (still running) fleet.

        The caller stops the supervisor afterwards -- workers outliving
        the router is what lets a drain spill arenas for the next
        incarnation to adopt."""
        self._stopping = True
        if self._tick_task is not None:
            self._tick_task.cancel()
            await asyncio.gather(self._tick_task, return_exceptions=True)
            self._tick_task = None
        if self._listener is not None:
            self._listener.close()
        for conn in list(self._clients):
            if conn.reader_task is not None:
                conn.reader_task.cancel()
        await asyncio.gather(
            *(c.reader_task for c in self._clients if c.reader_task),
            return_exceptions=True)
        if self._listener is not None:
            await self._listener.wait_closed()
            self._listener = None
        for backend in self._backends.values():
            backend.alive = False
            if backend.reader_task is not None:
                backend.reader_task.cancel()
            backend.writer.close()
        await asyncio.gather(
            *(b.reader_task for b in self._backends.values()
              if b.reader_task), return_exceptions=True)
        if self._obs is not None:
            await self._obs.stop()
        return self.cluster_report()

    async def _attach_backend(self, handle) -> _Backend:
        reader, writer = await asyncio.open_connection(
            self._worker_host, handle.port)
        backend = _Backend(handle.index, self._worker_host, handle.port,
                           handle.obs_port, handle.pid, reader, writer)
        self._backends[handle.index] = backend
        self.ring.add(handle.index)
        backend.reader_task = asyncio.ensure_future(
            self._backend_reader(backend))
        self.metrics.workers_alive.set(
            sum(1 for b in self._backends.values() if b.alive))
        return backend

    async def _adopt_existing(self) -> None:
        """Re-home arenas left by a previous incarnation of the fleet.

        The ring decides ownership, so a router restarted over the same
        state directory reproduces the old placement exactly."""
        if not self.state_dir:
            return
        from repro.core.state import ArenaStore
        for sid in ArenaStore(self.state_dir).session_ids():
            self._note_session_id(sid)
            try:
                target = self.ring.assign(sid)
            except LookupError:
                break
            try:
                await self._control(self._backends[target],
                                    protocol.FrameType.ADOPT_SESSION, sid)
            except (ClusterControlError, ConnectionError,
                    asyncio.TimeoutError):
                continue  # corrupt/quarantined arena: skip, don't die
            self._sessions[sid] = target
            self.adopted_at_start += 1
        self._refresh_gauges()

    # ------------------------------------------------------- client side

    async def _on_client(self, reader, writer) -> None:
        if self._stopping:
            writer.close()
            return
        conn = _ClientConn(reader, writer)
        conn.reader_task = asyncio.current_task()
        conn.writer_task = asyncio.ensure_future(self._client_writer(conn))
        self._clients.append(conn)
        self.metrics.connections.inc()
        dispatch: Optional[asyncio.Future] = None
        try:
            while True:
                payload = await _read_payload(reader)
                if payload is None:
                    break
                dispatch = asyncio.ensure_future(
                    self._dispatch_client(conn, payload))
                keep_open = await asyncio.shield(dispatch)
                dispatch = None
                if not keep_open:
                    break
        except asyncio.CancelledError:
            pass
        except protocol.ProtocolError as exc:
            self._enqueue_error(conn, 0, protocol.ErrorCode.BAD_FRAME,
                                str(exc))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            # Cancellation (router stop) may land on any of these
            # awaits -- cleanup must still run to completion.
            if dispatch is not None:
                try:
                    await dispatch
                except (Exception, asyncio.CancelledError):
                    pass
            conn.responses.put_nowait(None)
            try:
                await conn.writer_task
            except (Exception, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            self._clients.remove(conn)
            self.metrics.connections.dec()

    async def _dispatch_client(self, conn, payload: bytearray) -> bool:
        """Route one client frame; returns False to close the
        connection (protocol-fatal condition, mirroring the server)."""
        version = payload[0]
        ftype = payload[1]
        (rid,) = _U32.unpack_from(payload, 2)
        if version not in protocol.SUPPORTED_VERSIONS:
            # Same shape the single server produces, so ServeClient's
            # transparent downgrade logic works unchanged.
            self._enqueue_error(
                conn, 0, protocol.ErrorCode.BAD_FRAME,
                f"protocol version {version}, expected one of "
                f"{list(protocol.SUPPORTED_VERSIONS)}")
            return False
        body_off = 14 if version >= 2 else 6
        if len(payload) < body_off:
            self._enqueue_error(
                conn, 0, protocol.ErrorCode.BAD_FRAME,
                f"truncated v{version} frame header "
                f"({len(payload)} bytes)")
            return False
        trace_id = _U64.unpack_from(payload, 6)[0] if version >= 2 else 0
        self.frames_proxied += 1
        self.metrics.frames.inc(type=_type_name(ftype))
        entry = _Entry(payload, conn, self._loop.create_future(), ftype,
                       version, trace_id, rid)
        # Stage-stamp every client frame under the client's trace id
        # (v1 frames have none; a router-assigned id still records the
        # router-side timeline, it just won't match the worker's).
        entry.trace = RouterTrace(
            trace_id=trace_id or new_trace_id(),
            frame_type=_type_name(ftype), request_id=rid,
            version=version, t_recv=entry.t_recv)
        conn.responses.put_nowait(entry)

        if ftype == protocol.FrameType.OPEN_SESSION:
            await self._route_open(entry, body_off)
            return True
        if ftype in _CONTROL_TYPES:
            self._fail_entry(
                entry, protocol.ErrorCode.BAD_FRAME,
                f"{protocol.FrameType(ftype).name} is router-internal "
                f"cluster control; clients open sessions with "
                f"OPEN_SESSION")
            return True
        if ftype not in _SESSION_TYPES:
            self._fail_entry(entry, protocol.ErrorCode.UNKNOWN_TYPE,
                             f"unknown frame type {ftype}")
            return True
        if len(payload) < body_off + _U64.size:
            self._fail_entry(entry, protocol.ErrorCode.BAD_FRAME,
                             "bad session op body: truncated session id")
            return True
        (sid,) = _U64.unpack_from(payload, body_off)
        if ftype == protocol.FrameType.STATS and sid == 0:
            # Server-wide stats become cluster-wide stats at the router.
            body = protocol.encode_json_body(self.cluster_report())
            self._complete(entry, _bare_frame(
                ftype | protocol.RESPONSE_BIT, rid, body, version,
                trace_id))
            return True
        entry.session_id = sid
        entry.trace.session_id = sid
        if ftype == protocol.FrameType.CLOSE_SESSION:
            entry.kind = "close"
        elif ftype == protocol.FrameType.STEP:
            entry.records = 1
        elif ftype == protocol.FrameType.STEP_BLOCK:
            if len(payload) >= body_off + 12:
                entry.records = _U32.unpack_from(payload, body_off + 8)[0]
        entry.trace.records = entry.records
        if sid in self._parked:
            entry.trace.on_park(time.monotonic())
            self._parked[sid].append(entry)
            return True
        owner = self._sessions.get(sid)
        if owner is None:
            self._fail_entry(entry, protocol.ErrorCode.UNKNOWN_SESSION,
                             f"unknown session {sid}")
            return True
        try:
            await self._forward(entry, self._backends[owner])
        except ConnectionError:
            # The owner died between lookup and write; its failover
            # will re-home the session, but this frame raced it.
            if not entry.future.done():
                self._fail_entry(entry, protocol.ErrorCode.INTERNAL,
                                 f"worker {owner} connection lost")
        return True

    async def _route_open(self, entry: _Entry, body_off: int) -> None:
        """Rewrite OPEN_SESSION -> OPEN_SESSION_AS with a router-global
        session id and forward it to the rendezvous owner."""
        gid = self._alloc_session_id()
        payload = entry.payload
        rewritten = bytearray(len(payload) + _U64.size)
        rewritten[:body_off] = payload[:body_off]
        rewritten[1] = protocol.FrameType.OPEN_SESSION_AS
        _U64.pack_into(rewritten, body_off, gid)
        rewritten[body_off + _U64.size:] = payload[body_off:]
        entry.payload = rewritten
        entry.session_id = gid
        entry.trace.session_id = gid
        entry.respond_open = True
        entry.kind = "open"
        try:
            target = self.ring.assign(gid)
        except LookupError:
            self._fail_entry(entry, protocol.ErrorCode.SHUTTING_DOWN,
                             "no live workers to place the session on")
            return
        # Tentative: confirmed by the worker's response, rolled back on
        # an ERROR (bad spec etc.).  Mapping it now keeps follow-up
        # frames pipelined behind the open routable immediately.
        self._sessions[gid] = target
        self._refresh_gauges()
        try:
            await self._forward(entry, self._backends[target])
        except ConnectionError:
            self._sessions.pop(gid, None)
            if not entry.future.done():
                self._fail_entry(entry, protocol.ErrorCode.INTERNAL,
                                 f"worker {target} connection lost")

    async def _client_writer(self, conn: _ClientConn) -> None:
        while True:
            entry = await conn.responses.get()
            if entry is None:
                return
            try:
                payload = await asyncio.wait_for(
                    asyncio.shield(entry.future), self.request_timeout)
            except asyncio.TimeoutError:
                entry.future.add_done_callback(_consume_result)
                payload = self._error_frame(
                    entry, protocol.ErrorCode.TIMEOUT,
                    f"request not served within "
                    f"{self.request_timeout:g}s by the cluster")
            except Exception as exc:  # noqa: BLE001
                payload = self._error_frame(
                    entry, protocol.ErrorCode.INTERNAL,
                    f"{type(exc).__name__}: {exc}")
            try:
                conn.writer.write(_LEN.pack(len(payload)))
                conn.writer.write(payload)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                return
            now = time.monotonic()
            latency = now - entry.t_recv
            self.metrics.request_seconds.observe(
                latency, type=_type_name(entry.frame_type))
            if entry.frame_type in _DATA_TYPES:
                self._latencies.append((now, latency))
            if entry.trace is not None:
                # The router's span is complete: client-experienced
                # latency plus every stage between accept and drain.
                entry.trace.t_done = now
                self.trace_store.put(entry.trace.trace_id,
                                     entry.trace.to_dict())
                self.slow_sampler.add(entry.trace)

    # ------------------------------------------------------ backend side

    async def _backend_reader(self, backend: _Backend) -> None:
        try:
            while True:
                payload = await _read_payload(backend.reader)
                if payload is None:
                    break
                self._on_backend_response(backend, payload)
        except asyncio.CancelledError:
            pass
        except (protocol.ProtocolError, ConnectionError,
                asyncio.IncompleteReadError, OSError):
            pass
        finally:
            await self._on_backend_lost(backend)

    def _on_backend_response(self, backend: _Backend,
                             payload: bytearray) -> None:
        (brid,) = _U32.unpack_from(payload, 2)
        entry = backend.pending.pop(brid, None)
        if entry is None:
            return  # response to a timed-out / failed-over request
        rtype = payload[1]
        body_off = 14 if payload[0] >= 2 else 6
        is_error = rtype == protocol.FrameType.ERROR
        if entry.trace is not None:
            entry.trace.t_replied = time.monotonic()
            if is_error:
                entry.trace.status = "error"
        _U32.pack_into(payload, 2, entry.client_request_id)
        if entry.respond_open and not is_error:
            payload[1] = (protocol.FrameType.OPEN_SESSION
                          | protocol.RESPONSE_BIT)
        if is_error:
            if entry.kind == "open":
                # The tentative placement never materialised.
                if self._sessions.get(entry.session_id) == backend.index:
                    self._sessions.pop(entry.session_id, None)
                    self._refresh_gauges()
        else:
            if entry.kind == "close":
                self._sessions.pop(entry.session_id, None)
                self._refresh_gauges()
            if entry.records:
                self.records_proxied += entry.records
                self.metrics.records.inc(entry.records)
                hits = 0
                if entry.frame_type == protocol.FrameType.STEP:
                    if len(payload) > body_off + 4:
                        hits = 1 if payload[body_off + 4] == 1 else 0
                elif entry.frame_type == protocol.FrameType.STEP_BLOCK:
                    if len(payload) >= body_off + 8:
                        (hits,) = _U32.unpack_from(payload, body_off + 4)
                if hits:
                    self.hits_proxied += hits
                    self.metrics.hits.inc(hits)
        if not entry.future.done():
            entry.future.set_result(payload)

    async def _forward(self, entry: _Entry, backend: _Backend) -> None:
        if not backend.alive:
            raise ConnectionError(
                f"worker {backend.index} is not connected")
        brid = self._next_brid & 0xFFFFFFFF
        self._next_brid += 1
        entry.brid = brid
        if entry.trace is not None:
            entry.trace.on_forward(backend.index, time.monotonic())
        _U32.pack_into(entry.payload, 2, brid)
        backend.pending[brid] = entry
        backend.writer.write(_LEN.pack(len(entry.payload)))
        backend.writer.write(entry.payload)
        await backend.writer.drain()

    async def _control(self, backend: _Backend, frame_type: int,
                       session_id: int) -> dict:
        """Send one router-internal control frame and decode the JSON
        report; raises :class:`ClusterControlError` on an ERROR reply
        and ``ConnectionError`` if the worker dies first."""
        payload = bytearray(_bare_frame(
            frame_type, 0, protocol.encode_session_op(session_id),
            protocol.PROTOCOL_VERSION, 0))
        entry = _Entry(payload, None, self._loop.create_future(),
                       frame_type, protocol.PROTOCOL_VERSION, 0, 0,
                       session_id=session_id)
        await self._forward(entry, backend)
        response = await asyncio.wait_for(entry.future,
                                          self.request_timeout)
        body_off = 14 if response[0] >= 2 else 6
        body = bytes(response[body_off:])
        if response[1] == protocol.FrameType.ERROR:
            code, message = protocol.decode_error(body)
            raise ClusterControlError(code, message)
        return protocol.decode_json_body(body)

    # -------------------------------------------------- migration / drain

    async def migrate(self, session_id: int,
                      target: Optional[int] = None,
                      reason: str = "manual") -> bool:
        """Hot-migrate one session; returns True if it moved.

        Park -> RELEASE (the worker-side barrier: all in-flight frames
        for the session are answered first) -> ADOPT -> flush parked
        frames in arrival order.  A session that cannot move (scalar
        mode, no state dir) is flushed back to its current owner."""
        owner = self._sessions.get(session_id)
        if owner is None:
            raise KeyError(session_id)
        if target is None:
            target = self.ring.assign(session_id)
        if target == owner or session_id in self._parked:
            return False
        target_backend = self._backends.get(target)
        if target_backend is None or not target_backend.alive:
            raise ValueError(f"target worker {target} is not connected")
        self._parked[session_id] = []
        self._refresh_gauges()
        try:
            await self._control(self._backends[owner],
                                protocol.FrameType.RELEASE_SESSION,
                                session_id)
        except ClusterControlError as exc:
            # Scalar-mode session (BAD_FRAME) or no state dir: it
            # stays put.  UNKNOWN_SESSION means it closed concurrently.
            if exc.code == protocol.ErrorCode.UNKNOWN_SESSION:
                self._sessions.pop(session_id, None)
            await self._flush_parked(session_id)
            return False
        except (ConnectionError, asyncio.TimeoutError):
            # The owner died mid-release; its failover re-homes the
            # session and flushes the parked frames.
            return False
        try:
            await self._control(target_backend,
                                protocol.FrameType.ADOPT_SESSION,
                                session_id)
            self._sessions[session_id] = target
            self.migrations += 1
            self.metrics.migrations.inc(reason=reason)
        except (ClusterControlError, ConnectionError,
                asyncio.TimeoutError):
            # Released but not adopted -- the arena is orphaned on
            # disk; find it any home the ring will give it.
            await self._rehome(session_id, reason=reason)
        await self._flush_parked(session_id)
        return True

    async def rebalance(self, reason: str = "rebalance") -> int:
        """Migrate every session whose rendezvous owner changed (after
        a worker joined); returns how many moved."""
        moved = 0
        for sid in sorted(self._sessions):
            owner = self._sessions.get(sid)
            if owner is None:
                continue
            try:
                want = self.ring.assign(sid)
            except LookupError:
                break
            if want == owner:
                continue
            try:
                if await self.migrate(sid, want, reason=reason):
                    moved += 1
            except (KeyError, ValueError):
                continue
        return moved

    async def _on_backend_lost(self, backend: _Backend) -> None:
        """Failover: re-home a dead worker's sessions and re-drive its
        in-flight frames, preserving per-session order."""
        if backend.lost:
            return
        backend.lost = True
        backend.alive = False
        self.ring.discard(backend.index)
        self.metrics.workers_alive.set(
            sum(1 for b in self._backends.values() if b.alive))
        pending = list(backend.pending.values())
        backend.pending.clear()
        if self._stopping:
            for entry in pending:
                if entry.conn is None:
                    if not entry.future.done():
                        entry.future.set_exception(ConnectionError(
                            f"worker {backend.index} connection lost"))
                else:
                    self._fail_entry(entry,
                                     protocol.ErrorCode.SHUTTING_DOWN,
                                     "router is shutting down")
            return
        # Park everything the dead worker owned *synchronously* --
        # frames arriving from here on queue behind the failover.
        owned = sorted(sid for sid, w in self._sessions.items()
                       if w == backend.index)
        for sid in owned:
            self._parked.setdefault(sid, [])
        self._refresh_gauges()
        client_entries: List[_Entry] = []
        for entry in pending:
            if entry.conn is None:
                if not entry.future.done():
                    entry.future.set_exception(ConnectionError(
                        f"worker {backend.index} connection lost"))
            else:
                client_entries.append(entry)
        # A SIGTERM drain spills arenas *after* its sockets close, so
        # wait for the process to actually finish before adopting.
        handle = self.supervisor.handles.get(backend.index)
        if handle is not None:
            await asyncio.to_thread(handle.process.join, 60.0)
        for sid in owned:
            await self._rehome(sid, reason="failover")
        # In-flight frames first (they are older than anything parked),
        # in their original send order.
        for entry in client_entries:
            await self._resend(entry)
        for sid in owned:
            await self._flush_parked(sid)

    async def _rehome(self, session_id: int, reason: str) -> Optional[int]:
        """Adopt *session_id*'s arena on its new rendezvous owner; on
        failure the session is recorded as lost.  Returns the new
        owner, or None."""
        try:
            target = self.ring.assign(session_id)
        except LookupError:
            self._lose_session(session_id)
            return None
        backend = self._backends[target]
        for attempt in range(max(1, self.adopt_retries)):
            try:
                await self._control(
                    backend, protocol.FrameType.ADOPT_SESSION, session_id)
                self._sessions[session_id] = target
                self.migrations += 1
                self.metrics.migrations.inc(reason=reason)
                return target
            except ClusterControlError as exc:
                if exc.code == protocol.ErrorCode.UNKNOWN_SESSION:
                    # No arena (yet): the old worker may still be
                    # flushing its drain, or it never snapshotted.
                    await asyncio.sleep(self.adopt_retry_delay)
                    continue
                break  # STATE_UNAVAILABLE etc.: unrecoverable here
            except (ConnectionError, asyncio.TimeoutError):
                break  # target died too; its own failover follows
        self._lose_session(session_id)
        return None

    def _lose_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)
        self.sessions_lost += 1
        self.metrics.sessions_lost.inc()
        self._refresh_gauges()

    async def _resend(self, entry: _Entry) -> None:
        """Re-drive one in-flight frame after its worker died."""
        if entry.future.done():
            return
        if entry.kind == "open":
            # The open never completed anywhere; place it afresh.
            try:
                target = self.ring.assign(entry.session_id)
            except LookupError:
                self._fail_entry(entry, protocol.ErrorCode.SHUTTING_DOWN,
                                 "no live workers to place the session on")
                return
            self._sessions[entry.session_id] = target
        else:
            target = self._sessions.get(entry.session_id)
            if target is None:
                self._fail_entry(
                    entry, protocol.ErrorCode.UNKNOWN_SESSION,
                    f"session {entry.session_id} was lost with its "
                    f"worker (no arena to restore)")
                return
        try:
            await self._forward(entry, self._backends[target])
        except ConnectionError:
            self._fail_entry(entry, protocol.ErrorCode.INTERNAL,
                             f"worker {target} connection lost")

    async def _flush_parked(self, session_id: int) -> None:
        """Forward a parked session's queued frames in arrival order.

        The parked marker is removed only once the queue is empty, with
        no await in between -- frames arriving mid-flush append behind
        the ones being flushed, so per-session order holds."""
        entries = self._parked.get(session_id)
        if entries is None:
            return
        while entries:
            entry = entries.pop(0)
            if entry.future.done():
                continue
            if entry.trace is not None and entry.trace.t_parked is not None:
                entry.trace.on_unpark(time.monotonic())
            owner = self._sessions.get(session_id)
            if owner is None:
                self._fail_entry(
                    entry, protocol.ErrorCode.UNKNOWN_SESSION,
                    f"session {session_id} was lost with its worker "
                    f"(no arena to restore)")
                continue
            try:
                await self._forward(entry, self._backends[owner])
            except ConnectionError:
                self._fail_entry(entry, protocol.ErrorCode.INTERNAL,
                                 f"worker {owner} connection lost")
        del self._parked[session_id]
        self._refresh_gauges()

    # ------------------------------------------------------ housekeeping

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            try:
                await self._tick()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the tick must survive
                pass

    async def _tick(self) -> None:
        await asyncio.to_thread(self.supervisor.reap)
        if not self.auto_restart or self._stopping:
            return
        for index in sorted(self._backends):
            backend = self._backends[index]
            handle = self.supervisor.handles.get(index)
            if backend.alive or handle is None:
                continue
            if handle.alive or handle.requested_stop:
                # Draining on purpose (or already restarting): leave it.
                continue
            if not backend.lost:
                continue  # EOF not yet processed; next tick
            try:
                new_handle = await asyncio.to_thread(
                    self.supervisor.restart_worker, index)
            except RuntimeError:
                continue  # failed to come up; retried next tick
            await self._attach_backend(new_handle)
            self.metrics.restarts.inc()
            # Sessions whose rendezvous winner is the revived slot
            # migrate home (warm arenas included).
            await self.rebalance(reason="rebalance")

    def _refresh_gauges(self) -> None:
        self.metrics.sessions.set(len(self._sessions))
        self.metrics.parked.set(len(self._parked))

    def _alloc_session_id(self) -> int:
        session_id = self._next_session_id
        self._next_session_id += 1
        return session_id

    def _note_session_id(self, session_id: int) -> None:
        self._next_session_id = max(self._next_session_id,
                                    session_id + 1)

    def _fail_entry(self, entry: _Entry, code: int, message: str) -> None:
        if entry.future.done():
            return
        entry.future.set_result(self._error_frame(entry, code, message))

    def _error_frame(self, entry: _Entry, code: int,
                     message: str) -> bytes:
        self.metrics.errors.inc(code=_code_name(code))
        if entry.trace is not None:
            entry.trace.status = ("timeout"
                                  if code == protocol.ErrorCode.TIMEOUT
                                  else "error")
            entry.trace.error = message
        return _bare_frame(protocol.FrameType.ERROR,
                           entry.client_request_id,
                           protocol.encode_error(code, message),
                           entry.version, entry.trace_id)

    def _enqueue_error(self, conn: _ClientConn, request_id: int,
                       code: int, message: str) -> None:
        entry = _Entry(b"", conn, self._loop.create_future(),
                       protocol.FrameType.ERROR,
                       protocol.PROTOCOL_VERSION_V1, 0, request_id)
        entry.future.set_result(self._error_frame(entry, code, message))
        conn.responses.put_nowait(entry)

    def _complete(self, entry: _Entry, payload: bytes) -> None:
        if not entry.future.done():
            entry.future.set_result(payload)

    # ----------------------------------------------------------- reports

    def session_owner(self, session_id: int) -> Optional[int]:
        return self._sessions.get(session_id)

    def cluster_report(self) -> dict:
        """The ``/cluster`` body and cluster-wide STATS response."""
        per_worker: Dict[int, int] = {}
        for owner in self._sessions.values():
            per_worker[owner] = per_worker.get(owner, 0) + 1
        workers = []
        for desc in self.supervisor.describe():
            backend = self._backends.get(desc["worker"])
            desc = dict(desc)
            desc["connected"] = bool(backend is not None and backend.alive)
            desc["sessions"] = per_worker.get(desc["worker"], 0)
            desc["pending"] = (len(backend.pending)
                               if backend is not None else 0)
            workers.append(desc)
        return {
            "schema": 1,
            "cluster": True,
            "router": {"host": self.host, "port": self.port,
                       "obs_port": self.obs_port},
            "workers": workers,
            "workers_alive": sum(1 for w in workers if w["connected"]),
            "sessions_open": len(self._sessions),
            "sessions_parked": len(self._parked),
            "connections_open": len(self._clients),
            "frames_proxied": self.frames_proxied,
            "records_proxied": self.records_proxied,
            "hits_proxied": self.hits_proxied,
            "migrations_total": self.migrations,
            "sessions_lost_total": self.sessions_lost,
            "adopted_at_start": self.adopted_at_start,
            "state_dir": self.state_dir,
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
        }

    async def _scrape_workers(self, path: str) -> List[tuple]:
        """(index, parsed-JSON-or-None) for every connected worker."""
        alive = [(i, b) for i, b in sorted(self._backends.items())
                 if b.alive and b.obs_port]
        results = await asyncio.gather(
            *(http_get_json(b.host, b.obs_port, path) for _, b in alive),
            return_exceptions=True)
        return [(i, None if isinstance(res, Exception) else res)
                for (i, _), res in zip(alive, results)]

    async def fleet_healthz(self) -> dict:
        """Aggregated ``/healthz``: router totals plus per-worker rows
        (shape-compatible with the single server's, so ``repro top``
        and existing probes keep working)."""
        scraped = dict(await self._scrape_workers("/healthz"))
        alerts = set()
        workers = []
        totals = {"resident": 0, "spilled": 0, "evictions": 0,
                  "reloads": 0, "snapshots": 0, "releases": 0}
        dead = 0
        for desc in self.supervisor.describe():
            index = desc["worker"]
            backend = self._backends.get(index)
            connected = bool(backend is not None and backend.alive)
            health = scraped.get(index) if connected else None
            row = {"worker": index, "pid": desc["pid"],
                   "port": desc["port"], "obs_port": desc["obs_port"],
                   "alive": connected, "restarts": desc["restarts"],
                   "status": "down", "sessions": 0, "resident": 0,
                   "spilled": 0, "evictions": 0, "reloads": 0,
                   "records": 0, "hits": 0, "alerts": []}
            if health is not None:
                row.update({
                    "status": health.get("status", "?"),
                    "sessions": health.get("sessions_open", 0),
                    "resident": health.get("sessions_resident", 0),
                    "spilled": health.get("sessions_spilled", 0),
                    "evictions": health.get("evictions_total", 0),
                    "reloads": health.get("reloads_total", 0),
                    "records": health.get("records_served", 0),
                    "hits": health.get("hits_served", 0),
                    "alerts": health.get("alerts", []),
                })
                totals["resident"] += row["resident"]
                totals["spilled"] += row["spilled"]
                totals["evictions"] += row["evictions"]
                totals["reloads"] += row["reloads"]
                totals["snapshots"] += health.get("snapshots_total", 0)
                totals["releases"] += health.get("releases_total", 0)
                for name in row["alerts"]:
                    alerts.add(f"w{index}:{name}")
            elif not desc["requested_stop"]:
                dead += 1
                alerts.add(f"w{index}:worker_down")
            workers.append(row)
        if self._stopping:
            status = "draining"
        elif alerts:
            status = "degraded"
        else:
            status = "ok"
        return {
            "schema": 1,
            "cluster": True,
            "status": status,
            "draining": self._stopping,
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
            "protocol_version": protocol.PROTOCOL_VERSION,
            "connections_open": len(self._clients),
            "sessions_open": len(self._sessions),
            "sessions_parked": len(self._parked),
            "sessions_resident": totals["resident"],
            "sessions_spilled": totals["spilled"],
            "evictions_total": totals["evictions"],
            "reloads_total": totals["reloads"],
            "snapshots_total": totals["snapshots"],
            "releases_total": totals["releases"],
            "state_dir": self.state_dir,
            "records_served": self.records_proxied,
            "hits_served": self.hits_proxied,
            "migrations_total": self.migrations,
            "sessions_lost_total": self.sessions_lost,
            "workers_down": dead,
            "alerts": sorted(alerts),
            "workers": workers,
            "shards": [],
        }

    async def fleet_slo(self) -> dict:
        """Aggregated ``/slo``: every worker's burn-rate statuses
        (names prefixed ``w<i>:``) plus router-side latency
        percentiles over proxied data frames."""
        scraped = await self._scrape_workers("/slo")
        slos = []
        workers_healthy = True
        for index, report in scraped:
            if report is None:
                workers_healthy = False
                continue
            if not report.get("healthy", True):
                workers_healthy = False
            for status in report.get("slos", []):
                status = dict(status)
                status["worker"] = index
                status["name"] = f"w{index}:{status.get('name', '?')}"
                slos.append(status)
        alerts = [s["name"] for s in slos if s.get("alerting")]
        horizon = time.monotonic() - 60.0
        window = [lat for t, lat in self._latencies if t >= horizon]
        return {
            "schema": 1,
            "cluster": True,
            "slos": slos,
            "alerts": alerts,
            "healthy": workers_healthy and not alerts,
            "latency": _latency_percentiles(window),
            "records_served": self.records_proxied,
            "hits_served": self.hits_proxied,
            "hit_rate": ((self.hits_proxied / self.records_proxied)
                         if self.records_proxied else None),
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
        }

    async def fleet_slow(self, max_entries: int = 32) -> dict:
        """Aggregated ``/slow``: the fleet's slowest requests as the
        *client* experienced them.

        The router's own sampler ranks by client-observed latency
        (accept to response drain), so queue/park/proxy time at the
        router counts; each entry is joined with the matching
        worker-side sample by trace id (``worker_spans``), giving the
        full cross-process timeline.  Worker-sampled requests the
        router's top-K missed ride along behind, upgraded with the
        router span from the trace store when it is still retained.
        """
        scraped = await self._scrape_workers("/slow")
        worker_entries: Dict[str, List[dict]] = {}
        worker_observed = 0
        for index, report in scraped:
            if report is None:
                continue
            worker_observed += report.get("observed", 0)
            for entry in report.get("slowest", []):
                entry = dict(entry, worker=index, source="worker")
                worker_entries.setdefault(
                    entry.get("trace_id", ""), []).append(entry)
        router_snap = self.slow_sampler.snapshot()
        slowest = []
        joined = set()
        for entry in router_snap["slowest"]:
            entry = dict(entry)
            spans = worker_entries.get(entry.get("trace_id", ""))
            if spans:
                joined.add(entry["trace_id"])
                entry["worker_spans"] = spans
            slowest.append(entry)
        for trace_id, spans in worker_entries.items():
            if trace_id in joined:
                continue
            for span in spans:
                span = dict(span)
                try:
                    router_spans = self.trace_store.get(
                        parse_trace_id(trace_id))
                except ValueError:
                    router_spans = []
                if router_spans:
                    span["router"] = router_spans[-1]
                    span["client_latency_ms"] = \
                        router_spans[-1].get("latency_ms")
                slowest.append(span)
        slowest.sort(
            key=lambda e: e.get("client_latency_ms")
            or e.get("latency_ms", 0), reverse=True)
        return {"schema": 2, "cluster": True,
                "observed": router_snap["observed"],
                "worker_observed": worker_observed,
                "slowest": slowest[:max_entries]}

    async def fleet_trace(self, trace_id: int) -> dict:
        """The cluster ``/trace/<id>`` body: the router's span(s) for
        one trace id merged with every worker's, ordered router first
        and then workers in hop order -- a request that traversed two
        workers (mid-flight failover, migration) reads as one timeline.
        """
        hex_id = format_trace_id(trace_id)
        router_spans = self.trace_store.get(trace_id)
        scraped = await self._scrape_workers(f"/trace/{hex_id}")
        worker_spans = []
        for index, report in scraped:
            if report is None:
                continue
            for span in report.get("spans", []):
                worker_spans.append(dict(span, worker=index))
        hop_order: Dict[int, int] = {}
        for span in router_spans:
            for position, worker in enumerate(span.get("workers", [])):
                hop_order.setdefault(worker, position)
        worker_spans.sort(key=lambda s: (
            hop_order.get(s["worker"], 1 << 30), s["worker"]))
        spans = router_spans + worker_spans
        return {"schema": 1, "cluster": True, "trace_id": hex_id,
                "found": bool(spans), "spans": spans}

    def trace_dump(self, limit: Optional[int] = None) -> dict:
        """The router's own ``/trace`` body (router-side spans only;
        per-id lookups fan out to the workers, the dump does not)."""
        return dict(self.trace_store.dump(limit), cluster=True)

    async def scale_report(self) -> dict:
        """The ``/scale`` body: autoscaling signals shaped like a
        Kubernetes custom-metrics API ``MetricValueList``.

        Signals: average sessions per live worker, p99 data-frame
        latency over the router's 60s window (client-experienced),
        the deepest shard queue across the fleet, and the worst
        *sustained* SLO burn (min of the fast and slow windows, so a
        single spike does not scale the fleet, matching the
        multi-window alert rule).  ``signals`` carries the raw floats
        for humans and the soak harness; ``items`` is what a metrics
        adapter (e.g. prometheus-adapter) serves to the HPA --
        see deploy/k8s.yaml and deploy/README.md.
        """
        scraped_health = await self._scrape_workers("/healthz")
        scraped_slo = await self._scrape_workers("/slo")
        workers_alive = sum(1 for b in self._backends.values() if b.alive)
        sessions_per_worker = (len(self._sessions)
                               / max(1, workers_alive))
        queue_depth = 0
        for _, health in scraped_health:
            if health is None:
                continue
            for shard in health.get("shards", []):
                queue_depth = max(queue_depth,
                                  shard.get("queue_depth", 0))
        burn = 0.0
        alerting = []
        for index, report in scraped_slo:
            if report is None:
                continue
            for status in report.get("slos", []):
                sustained = min(status.get("fast_burn", 0.0),
                                status.get("slow_burn", 0.0))
                if sustained > burn:
                    burn = sustained
                if status.get("alerting"):
                    alerting.append(
                        f"w{index}:{status.get('name', '?')}")
        horizon = time.monotonic() - 60.0
        window = sorted(lat for t, lat in self._latencies
                        if t >= horizon)
        if window:
            from repro.serve.loadgen import percentile
            p99_ms = round(percentile(window, 99) * 1e3, 4)
        else:
            p99_ms = 0.0
        signals = {
            "sessions_per_worker": round(sessions_per_worker, 4),
            "step_latency_p99_ms": p99_ms,
            "queue_depth": queue_depth,
            "slo_burn_rate": round(burn, 4),
        }
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        items = [{
            "describedObject": {"kind": "Service", "apiVersion": "v1",
                                "name": "repro-serve"},
            "metric": {"name": f"repro_{name}"},
            "timestamp": timestamp,
            "windowSeconds": 60,
            "value": _quantity(value),
        } for name, value in signals.items()]
        return {
            "kind": "MetricValueList",
            "apiVersion": "custom.metrics.k8s.io/v1beta2",
            "metadata": {},
            "items": items,
            "signals": signals,
            "workers_alive": workers_alive,
            "sessions_open": len(self._sessions),
            "sessions_parked": len(self._parked),
            "alerts": sorted(alerting),
        }

    async def fleet_tables(self) -> dict:
        """Aggregated ``/tables``: per-worker shard rows (relabelled
        ``<worker>.<shard>``) and fleet-pooled totals."""
        scraped = await self._scrape_workers("/tables")
        shards = []
        totals = {"sessions": 0, "live_bits": 0, "storage_bits": 0,
                  "hits": 0, "alias_accesses": 0, "alias_conflicts": 0}
        for index, report in scraped:
            if report is None:
                continue
            for shard in report.get("shards", []):
                shard = dict(shard)
                shard["worker"] = index
                shard["shard"] = f"{index}.{shard.get('shard', '?')}"
                shard.pop("sessions", None)  # per-session detail: bulky
                shards.append(shard)
            rep_totals = report.get("totals", {})
            for key in totals:
                totals[key] += rep_totals.get(key, 0)
        totals["occupancy"] = (
            round(totals["live_bits"] / totals["storage_bits"], 6)
            if totals["storage_bits"] else 0.0)
        totals["efficiency"] = (
            round(totals["hits"] / totals["live_bits"], 9)
            if totals["live_bits"] else 0.0)
        totals["aliasing_ratio"] = (
            round(totals["alias_conflicts"] / totals["alias_accesses"], 6)
            if totals["alias_accesses"] else 0.0)
        return {"schema": 1, "cluster": True, "shards": shards,
                "totals": totals}

    async def fleet_metrics(self, prefix: Optional[str] = None,
                            exemplars: bool = False) -> str:
        """One merged Prometheus exposition: the router's own registry
        plus every live worker's, relabelled ``worker="i"``."""
        from repro.telemetry.live import live_prometheus_text
        query = []
        if prefix:
            query.append(f"prefix={prefix}")
        if exemplars:
            query.append("exemplars=1")
        path = "/metrics" + (f"?{'&'.join(query)}" if query else "")
        alive = [(i, b) for i, b in sorted(self._backends.items())
                 if b.alive and b.obs_port]
        results = await asyncio.gather(
            *(http_get(b.host, b.obs_port, path) for _, b in alive),
            return_exceptions=True)
        parts = [(None, live_prometheus_text(prefix=prefix,
                                             exemplars=exemplars))]
        for (index, _), text in zip(alive, results):
            if isinstance(text, Exception):
                continue
            parts.append(({"worker": str(index)}, text))
        return merge_prometheus_texts(parts)


class _ClusterObs(ObservabilityServer):
    """The router's aggregated observability endpoint.

    Same port layout and routes as a worker's endpoint -- ``repro
    top``, curl probes and Prometheus need no cluster-specific
    configuration -- plus ``/cluster`` for the fleet control report.
    The aggregating routes are coroutines (they scrape the workers);
    the base class awaits them.
    """

    def _route(self, path: str, query: dict):
        router: Router = self.server
        if path == "/metrics":
            return self._metrics(router, query)
        if path == "/healthz":
            return _json_async(router.fleet_healthz())
        if path == "/slo":
            return _json_async(router.fleet_slo())
        if path == "/slow":
            return _json_async(router.fleet_slow())
        if path == "/tables":
            return _json_async(router.fleet_tables())
        if path == "/scale":
            return _json_async(router.scale_report())
        if path == "/trace":
            values = query.get("limit")
            try:
                limit = int(values[0]) if values else None
            except ValueError:
                limit = None
            return _json(router.trace_dump(limit))
        if path.startswith("/trace/"):
            try:
                trace_id = parse_trace_id(path[len("/trace/"):])
            except ValueError as exc:
                return ("400 Bad Request", "text/plain; charset=utf-8",
                        f"{exc}\n".encode("utf-8"))
            return _json_async(router.fleet_trace(trace_id))
        if path == "/cluster":
            return _json(router.cluster_report())
        if path == "/":
            return _json({
                "service": "repro-serve-cluster",
                "endpoints": ["/metrics", "/healthz", "/slo", "/slow",
                              "/tables", "/trace", "/scale", "/cluster"],
            })
        return ("404 Not Found", "text/plain; charset=utf-8",
                f"no route {path}\n".encode("utf-8"))

    async def _metrics(self, router: Router, query: dict):
        values = query.get("prefix")
        prefix = values[0] if values else None
        flags = query.get("exemplars")
        exemplars = bool(flags) and flags[0] not in ("", "0", "false",
                                                     "no")
        text = await router.fleet_metrics(prefix=prefix,
                                          exemplars=exemplars)
        return ("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"))


class ClusterThread:
    """Supervisor + router behind a blocking API (mirrors
    :class:`~repro.serve.server.ServerThread`).

        with ClusterThread(workers=3, state_dir=d) as cluster:
            client = ServeClient("127.0.0.1", cluster.port)
            ...

    The supervisor starts on the calling thread (multiprocessing spawn
    + listening handshake); the router runs on a background asyncio
    thread.  ``stop()`` drains the router first, then SIGTERMs the
    fleet -- workers spill their arenas on the way down.
    """

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0, obs_port: Optional[int] = None,
                 router_kwargs: Optional[dict] = None, **worker_kwargs):
        self.n_workers = workers
        self._host = host
        self._port = port
        self._obs_port = obs_port
        self._router_kwargs = dict(router_kwargs or {})
        self._worker_kwargs = worker_kwargs
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.supervisor: Optional[ClusterSupervisor] = None
        self.router: Optional[Router] = None
        self.port: Optional[int] = None
        self.obs_port: Optional[int] = None
        self.final_stats: Optional[dict] = None

    def start(self) -> "ClusterThread":
        self.supervisor = ClusterSupervisor(
            self.n_workers, **self._worker_kwargs).start()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-router")
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            self.supervisor.stop()
            raise self._startup_error
        if self.port is None:
            self.supervisor.stop()
            raise RuntimeError("router failed to start within 60s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.router = Router(self.supervisor, host=self._host,
                                 port=self._port,
                                 obs_port=self._obs_port,
                                 **self._router_kwargs)
            await self.router.start()
            self.port = self.router.port
            self.obs_port = self.router.obs_port
        except BaseException as exc:  # noqa: BLE001 - rethrown in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        self.final_stats = await self.router.stop()

    def call(self, coro, timeout: float = 60.0):
        """Run a coroutine on the router's loop from any thread --
        tests drive migrations with
        ``cluster.call(cluster.router.migrate(sid, target))``."""
        if self._loop is None:
            raise RuntimeError("cluster is not running")
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(timeout)

    def stop(self) -> Optional[dict]:
        if self._thread is not None:
            if self._loop is not None and self._stop_event is not None:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=90)
            alive = self._thread.is_alive()
            self._thread = None
            if alive:
                raise RuntimeError("router thread did not stop within 90s")
        if self.supervisor is not None:
            self.supervisor.stop()
        return self.final_stats

    def __enter__(self) -> "ClusterThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ------------------------------------------------------------- helpers

async def _read_payload(reader) -> Optional[bytearray]:
    """One frame's payload (after the length prefix) as a mutable
    buffer; ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise protocol.ProtocolError("connection closed mid-frame") from exc
    length = protocol.read_length(prefix)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise protocol.ProtocolError("connection closed mid-frame") from exc
    return bytearray(payload)


def _bare_frame(frame_type: int, request_id: int, body: bytes,
                version: int, trace_id: int) -> bytes:
    """A complete frame without its length prefix (the writers add
    it), matching what :func:`_read_payload` returns."""
    return protocol.encode_frame(frame_type, request_id, body,
                                 version=version, trace_id=trace_id)[4:]


def _latency_percentiles(window: List[float]) -> dict:
    if not window:
        return {"count": 0}
    from repro.serve.loadgen import percentile
    ordered = sorted(window)
    return {
        "count": len(ordered),
        "p50_ms": round(percentile(ordered, 50) * 1e3, 4),
        "p90_ms": round(percentile(ordered, 90) * 1e3, 4),
        "p99_ms": round(percentile(ordered, 99) * 1e3, 4),
        "max_ms": round(ordered[-1] * 1e3, 4),
    }


def _quantity(value: float) -> str:
    """A Kubernetes resource.Quantity in milli-units (``"1500m"`` ==
    1.5): the custom-metrics API has no float type, this is its
    convention for fractional metric values."""
    return f"{int(round(float(value) * 1000))}m"


def _type_name(frame_type: int) -> str:
    try:
        return protocol.FrameType(frame_type).name.lower()
    except ValueError:
        return f"unknown_{frame_type}"


def _code_name(code: int) -> str:
    try:
        return protocol.ErrorCode(code).name.lower()
    except ValueError:
        return f"code_{code}"


def _json(payload: dict):
    import json as _jsonlib
    body = (_jsonlib.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return "200 OK", "application/json", body


async def _json_async(coro):
    return _json(await coro)


def _consume_result(future: "asyncio.Future") -> None:
    if not future.cancelled():
        future.exception()
