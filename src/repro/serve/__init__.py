"""Online value-prediction service (``repro serve`` / ``repro loadgen``).

The offline harness replays traces through the engine layer in batch;
this package serves the same predictors over TCP, online:

- :mod:`repro.serve.protocol` -- the length-prefixed binary frame
  format (versioned; OPEN_SESSION / PREDICT / OUTCOME / STEP /
  STEP_BLOCK / FLUSH / STATS / CLOSE_SESSION).
- :mod:`repro.serve.session` -- per-session predictor state built from
  a picklable :class:`~repro.core.spec.PredictorSpec`, with an optional
  in-flight *window* implementing delayed update online
  (:mod:`repro.core.delayed` semantics, bit-for-bit).
- :mod:`repro.serve.batcher` -- the cross-connection micro-batcher:
  bounded queues, max-batch-size / max-delay knobs, backpressure,
  graceful drain.
- :mod:`repro.serve.server` -- the asyncio TCP server; sessions are
  sharded across worker tasks by session id.
- :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` -- a blocking
  client (with reconnect-on-reset backoff) and a trace-replay load
  generator reporting throughput and latency percentiles, verified
  against the offline engine.
- :mod:`repro.serve.cluster` -- multi-worker serving: a
  :class:`~repro.serve.cluster.supervisor.ClusterSupervisor` fleet of
  worker processes behind a session-affine
  :class:`~repro.serve.cluster.router.Router` (rendezvous-hashed
  placement, hot migration over durable-state arenas, zero-drop
  drain/failover, aggregated observability).

Serving is bit-identical to the offline engines: a served trace
produces the same hit/miss counts as ``measure_suite`` on the same
spec, including under delayed-update windows -- at every fleet size.
"""

from repro.serve.client import ServeClient
from repro.serve.cluster import (ClusterSupervisor, ClusterThread,
                                 RendezvousRing, Router)
from repro.serve.obs import ObservabilityServer
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import PredictionServer, ServerThread
from repro.serve.session import Session
from repro.serve.tracing import (RequestTrace, SlowRequestSampler,
                                 format_trace_id, new_trace_id)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Session",
    "PredictionServer",
    "ServerThread",
    "ServeClient",
    "ClusterSupervisor",
    "ClusterThread",
    "RendezvousRing",
    "Router",
    "ObservabilityServer",
    "RequestTrace",
    "SlowRequestSampler",
    "new_trace_id",
    "format_trace_id",
]
