"""Trace-replay load generator for the prediction service.

Replays a :class:`~repro.trace.trace.ValueTrace` against a running
server and reports throughput and latency percentiles, in one or both
of two shapes:

``naive``
    one STEP frame per record, one round trip each -- the un-batched
    baseline any RPC-per-record client would see.
``batched``
    STEP_BLOCK frames of ``block`` records per round trip -- the shape
    that actually exercises the micro-batched kernel path.

Both modes drive a fresh session over the same records in order, so
their hit counts must agree with each other *and* with the offline
engines; ``verify=True`` replays the equivalent spec (wrapped in
:class:`~repro.core.spec.DelayedSpec` when a window is configured)
through :func:`~repro.harness.simulate.measure_accuracy` and checks
the served hit counts bit-for-bit.

The report is a JSON-able dict (``schema`` 1).  When *min_speedup* is
given and both modes ran, ``speedup_ok`` records whether batched
throughput beat naive by at least that factor -- the CI smoke job's
regression guard.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.spec import DelayedSpec, PredictorSpec
from repro.serve.client import ServeClient

__all__ = ["run_loadgen", "percentile"]

LOADGEN_SCHEMA = 1

_MASK32 = 0xFFFFFFFF


def percentile(sorted_values: List[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = int(round((p / 100.0) * (len(sorted_values) - 1)))
    return sorted_values[min(rank, len(sorted_values) - 1)]


def _latency_summary(latencies: List[float]) -> dict:
    ordered = sorted(latencies)
    mean = sum(ordered) / len(ordered) if ordered else 0.0
    return {
        "p50_ms": round(percentile(ordered, 50) * 1e3, 4),
        "p90_ms": round(percentile(ordered, 90) * 1e3, 4),
        "p99_ms": round(percentile(ordered, 99) * 1e3, 4),
        "mean_ms": round(mean * 1e3, 4),
    }


def _replay_naive(client: ServeClient, session: int, pcs, values):
    latencies = []
    hits = 0
    for pc, value in zip(pcs, values):
        started = time.perf_counter()
        _, hit = client.step(session, pc, value)
        latencies.append(time.perf_counter() - started)
        hits += hit
    return hits, latencies


def _replay_batched(client: ServeClient, session: int, pcs, values,
                    block: int):
    latencies = []
    hits = 0
    for start in range(0, len(pcs), block):
        chunk_pcs = pcs[start:start + block]
        chunk_values = values[start:start + block]
        started = time.perf_counter()
        _, chunk_hits = client.step_block(session, chunk_pcs, chunk_values)
        latencies.append(time.perf_counter() - started)
        hits += chunk_hits
    return hits, latencies


def _run_mode(host: str, port: int, spec: PredictorSpec, window: int,
              mode: str, pcs, values, block: int) -> dict:
    with ServeClient(host, port) as client:
        session = client.open_session(spec, window)
        started = time.perf_counter()
        if mode == "naive":
            hits, latencies = _replay_naive(client, session, pcs, values)
        else:
            hits, latencies = _replay_batched(client, session, pcs, values,
                                              block)
        elapsed = time.perf_counter() - started
        stats = client.close_session(session)
        negotiated = client.protocol_version
    records = len(pcs)
    result = {
        "mode": mode,
        "records": records,
        "protocol_version": negotiated,
        "requests": len(latencies),
        "seconds": round(elapsed, 6),
        "records_per_s": round(records / elapsed, 1) if elapsed else 0.0,
        "latency": _latency_summary(latencies),
        "hits": hits,
        "accuracy": round(hits / records, 6) if records else 0.0,
    }
    if stats["hits"] != hits:
        raise RuntimeError(
            f"{mode}: client counted {hits} hits, session reported "
            f"{stats['hits']}")
    return result


def run_loadgen(spec: PredictorSpec, trace, host: str, port: int,
                window: int = 0, mode: str = "both", block: int = 256,
                verify: bool = True,
                min_speedup: Optional[float] = None) -> dict:
    """Replay *trace* against the server at ``host:port``; see module
    docstring for the report shape."""
    if mode not in ("naive", "batched", "both"):
        raise ValueError(f"unknown loadgen mode {mode!r}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    pcs = [int(pc) & _MASK32 for pc in trace.pcs]
    values = [int(v) & _MASK32 for v in trace.values]
    report = {
        "schema": LOADGEN_SCHEMA,
        "trace": trace.name,
        "records": len(pcs),
        "spec": spec.name,
        "spec_config": spec.to_config(),
        "window": window,
        "block": block,
        "modes": {},
    }
    modes = ("naive", "batched") if mode == "both" else (mode,)
    for name in modes:
        report["modes"][name] = _run_mode(host, port, spec, window, name,
                                          pcs, values, block)
    report["protocol_version"] = next(
        iter(report["modes"].values()))["protocol_version"]
    if "naive" in report["modes"] and "batched" in report["modes"]:
        naive_rate = report["modes"]["naive"]["records_per_s"]
        batched_rate = report["modes"]["batched"]["records_per_s"]
        speedup = batched_rate / naive_rate if naive_rate else 0.0
        report["speedup"] = round(speedup, 2)
        report["min_speedup"] = min_speedup
        if min_speedup is not None:
            report["speedup_ok"] = speedup >= min_speedup
    if verify:
        report["verify"] = _verify(spec, trace, window, report["modes"])
    return report


def _verify(spec: PredictorSpec, trace, window: int, modes: dict) -> dict:
    from repro.harness.simulate import measure_accuracy
    offline_spec = DelayedSpec(spec, window) if window else spec
    offline = measure_accuracy(offline_spec, trace)
    served = {name: stats["hits"] for name, stats in modes.items()}
    return {
        "offline_spec": offline_spec.name,
        "offline_hits": offline.correct,
        "served_hits": served,
        "matched": all(hits == offline.correct for hits in served.values()),
    }
