"""The asyncio prediction server.

One process, one event loop, ``shards`` independent worker tasks.
Sessions are assigned to a shard by ``session_id % shards`` at open
and never migrate, so all of a session's requests are serialized
through its shard's queue -- per-session FIFO without locks -- while
different sessions proceed in parallel across shards.

A connection is two tasks:

- the *reader* parses frames and dispatches them.  Dispatch enqueues a
  response slot on the connection's writer queue first (responses go
  out in request order), then submits the work item to the owning
  shard's :class:`~repro.serve.batcher.MicroBatcher`, awaiting there
  under backpressure.  Each dispatch is wrapped in ``asyncio.shield``
  so a reader cancelled mid-request (shutdown) still completes the
  enqueue -- no in-flight request is ever dropped.
- the *writer* consumes response slots in FIFO order, awaiting each
  item's future (bounded by ``request_timeout``; the timeout produces
  an ERROR response, never cancels the work) and writing the frame.

Graceful shutdown (:meth:`PredictionServer.stop`): close the listener,
cancel the readers (shielded dispatches finish), let every writer
drain its pending responses while the shard workers keep executing,
then cancel the (now idle) workers and close the transports.

With a state directory configured (``--state-dir``), sessions are
**durable**: an LRU evictor spills the coldest engine-mode sessions to
per-session arena files (:class:`~repro.core.state.ArenaStore`) when a
shard exceeds its resident cap, and the shard's session resolver
transparently reloads a spilled session on its next request -- the
client never sees an eviction, only (at worst) one slightly slower
request.  The SNAPSHOT frame checkpoints a session on demand (the
durability barrier for kill-safety), a graceful stop spills every
spillable session, and a restarting server picks up the arena
directory where the last process left off -- session ids continue
above the highest spilled id, and the first request for a spilled
session restores it bit-identically.  Arenas from a different
state-layout generation are refused with ``STATE_VERSION`` (see
:data:`repro.core.state.STATE_VERSION`): a rolling deploy gets a clear
error, never misread tables.

Everything is observable through :mod:`repro.telemetry`: request /
batch / record counters, queue-depth and batch-size distributions,
open-session / resident / spilled gauges, eviction / reload / snapshot
counters, and one ``serve.session`` span event per closed session when
a telemetry run is active.

:class:`ServerThread` hosts the server on a background thread with a
plain blocking API -- the test suite and the CLI's loadgen path use it
so nothing outside this module needs an event loop.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.spec import spec_from_config
from repro.core.state import (STATE_VERSION, ArenaStore,
                              StateVersionError)
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher, WorkItem
from repro.serve.obs import ObservabilityServer
from repro.serve.session import Session
from repro.serve.tracing import (RequestTrace, SlowRequestSampler,
                                 TraceStore, new_trace_id)
from repro.telemetry import run as telemetry_run_module
from repro.telemetry.registry import registry
from repro.telemetry.slo import SLO, SLOMonitor, default_serve_slos

__all__ = ["PredictionServer", "ServerThread", "resolve_loop_factory"]

_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
_LATENCY_BUCKETS = (.0001, .0005, .001, .005, .025, .1, .5, 2.5)


class _WholeFrameEncoder:
    """A response encoder that builds the complete wire frame itself.

    The writer loop normally wraps an encoder's body in
    ``protocol.encode_frame``; encoders wrapped in this marker are
    called as ``fn(result, frame_type, request_id, version, trace_id)``
    and return the finished frame -- the single-allocation path for
    large STEP_BLOCK responses.
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn


_BLOCK_RESULT_FRAME = _WholeFrameEncoder(
    lambda res, frame_type, request_id, version, trace_id:
    protocol.encode_block_result_frame(frame_type, request_id,
                                       res[0], res[1],
                                       version=version, trace_id=trace_id))


def resolve_loop_factory(use_uvloop: bool):
    """The event-loop factory for ``use_uvloop``.

    Returns ``(factory_or_None, note)``: uvloop's loop factory when it
    was requested *and* is importable, else ``None`` (stock asyncio).
    uvloop is an optional dependency -- missing it downgrades with a
    note instead of failing, so ``serve --uvloop`` is safe everywhere.
    """
    if not use_uvloop:
        return None, "asyncio"
    try:
        import uvloop
    except ImportError:
        return None, "asyncio (uvloop requested but not installed)"
    return uvloop.new_event_loop, "uvloop"


class _ServeMetrics:
    """Handles into the process registry for the serving data path."""

    def __init__(self):
        reg = registry()
        self.requests = reg.counter(
            "repro_serve_requests_total",
            "Requests dispatched, by frame type.", labels=("type",))
        self.errors = reg.counter(
            "repro_serve_errors_total",
            "Error responses sent, by error code.", labels=("code",))
        self.records = reg.counter(
            "repro_serve_records_total",
            "Prediction records stepped through sessions.")
        self.fused = reg.counter(
            "repro_serve_fused_records_total",
            "Records that shared a kernel call with another request.")
        self.batches = reg.histogram(
            "repro_serve_batch_size",
            "Micro-batch sizes per shard drain.",
            buckets=_BATCH_BUCKETS, labels=("shard",))
        self.batch_seconds = reg.histogram(
            "repro_serve_batch_seconds",
            "Micro-batch execution time.",
            buckets=_LATENCY_BUCKETS, labels=("shard",))
        self.queue_depth = reg.gauge(
            "repro_serve_queue_depth",
            "Items waiting in each shard's queue.", labels=("shard",))
        self.sessions_open = reg.gauge(
            "repro_serve_sessions_open", "Sessions currently open.")
        self.connections_open = reg.gauge(
            "repro_serve_connections_open", "Client connections open.")
        self.request_seconds = reg.histogram(
            "repro_serve_request_seconds",
            "End-to-end request latency (frame read to response written).",
            buckets=_LATENCY_BUCKETS, labels=("type",))
        self.hits = reg.counter(
            "repro_serve_hits_total", "Correct predictions served.")
        self.slo_burn = reg.gauge(
            "repro_serve_slo_burn_rate",
            "Burn rate per SLO and window at the last evaluation.",
            labels=("slo", "window"))
        self.slo_alerts = reg.counter(
            "repro_serve_slo_alerts_total",
            "SLO alert activations (transitions into firing).",
            labels=("slo",))
        self.healthy = reg.gauge(
            "repro_serve_healthy", "1 while no SLO alert fires, else 0.")
        self.table_occupancy = reg.gauge(
            "repro_serve_table_occupancy",
            "Live (nonzero) fraction of session table storage, pooled "
            "per shard.", labels=("shard",))
        self.table_live_bits = reg.gauge(
            "repro_serve_table_live_bits",
            "Live table bits across a shard's open sessions.",
            labels=("shard",))
        self.table_efficiency = reg.gauge(
            "repro_serve_table_efficiency",
            "Served hits per live table bit, pooled per shard.",
            labels=("shard",))
        self.table_aliasing = reg.gauge(
            "repro_serve_table_aliasing_ratio",
            "Training accesses whose level-1 entry was last written by "
            "a different pc, pooled per shard.", labels=("shard",))
        self.sessions_resident = reg.gauge(
            "repro_serve_sessions_resident",
            "Open sessions whose tables are resident in memory.")
        self.sessions_spilled = reg.gauge(
            "repro_serve_sessions_spilled",
            "Open sessions spilled to the arena store, awaiting their "
            "next request.")
        self.evictions = reg.counter(
            "repro_serve_session_evictions_total",
            "Sessions spilled to the arena store by the LRU evictor "
            "or the shutdown drain.")
        self.reloads = reg.counter(
            "repro_serve_session_reloads_total",
            "Spilled sessions transparently restored from the arena "
            "store on a request.")
        self.snapshots = reg.counter(
            "repro_serve_session_snapshots_total",
            "Explicit SNAPSHOT checkpoints written while the session "
            "stayed resident.")
        self.releases = reg.counter(
            "repro_serve_session_releases_total",
            "Sessions checkpointed and relinquished via RELEASE_SESSION "
            "(the migration barrier).")
        self.adoptions = reg.counter(
            "repro_serve_session_adoptions_total",
            "Arena files adopted via ADOPT_SESSION.")


class _Shard:
    def __init__(self, index: int, batcher: MicroBatcher):
        self.index = index
        self.batcher = batcher
        self.sessions: Dict[int, Session] = {}
        #: Open sessions currently living in the arena store rather
        #: than in :attr:`sessions`; the resolver moves ids back on
        #: their next request.
        self.spilled: Set[int] = set()
        self.task: Optional[asyncio.Task] = None
        self.evictions = 0
        self.reloads = 0
        # Bound by the server once the store is known (resolver needs
        # both the shard and the store).
        self.resolve = self.sessions.get


class _Connection:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.responses: asyncio.Queue = asyncio.Queue()
        self.reader_task: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None


class PredictionServer:
    """Sharded, micro-batching TCP value-prediction service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 shards: int = 2, max_batch: int = 64,
                 max_delay: float = 0.002, queue_depth: int = 1024,
                 request_timeout: float = 30.0,
                 obs_port: Optional[int] = None,
                 obs_host: str = "127.0.0.1",
                 slos: Optional[List[SLO]] = None,
                 slo_interval: float = 0.25,
                 slow_k: int = 32,
                 trace_capacity: int = 4096,
                 state_dir: Optional[str] = None,
                 max_resident: Optional[int] = None,
                 adopt_arenas: bool = True):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_resident is not None and max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, "
                             f"got {max_resident}")
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.shards = [
            _Shard(i, MicroBatcher(max_batch=max_batch, max_delay=max_delay,
                                   queue_depth=queue_depth))
            for i in range(shards)
        ]
        self.metrics = _ServeMetrics()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: List[_Connection] = []
        self._next_session_id = 1
        self._session_opened_at: Dict[int, float] = {}
        # ----------------------------------------------- durable state
        # Normalised to str: this field travels in JSON bodies
        # (healthz, STATS) and tests pass pathlib Paths.
        self.state_dir = os.fspath(state_dir) if state_dir else None
        self.max_resident = max_resident
        self._store = ArenaStore(state_dir) if state_dir else None
        self._last_used: Dict[int, float] = {}
        self.snapshots_taken = 0
        self.releases = 0
        if self._store is not None and adopt_arenas:
            # Adopt the previous process's spilled sessions: each id
            # stays addressable (restored on its first request) and the
            # id counter continues above the highest one on disk, so a
            # restarted server never reissues a session id that still
            # has an arena.  Cluster workers share one state directory
            # and run with adopt_arenas=False -- their router assigns
            # arenas explicitly with ADOPT_SESSION frames instead.
            adopted = self._store.session_ids()
            for session_id in adopted:
                self.shards[session_id % shards].spilled.add(session_id)
            if adopted:
                self._note_session_id(adopted[-1])
        for shard in self.shards:
            shard.resolve = self._resolver_for(shard)
        self._refresh_residency()
        self._stopping = False
        self._started_at = 0.0
        # Observability: slow-request sample, SLO monitor, HTTP endpoint.
        self.slow_sampler = SlowRequestSampler(slow_k)
        self.trace_store = TraceStore(trace_capacity)
        slo_list = default_serve_slos() if slos is None else list(slos)
        self.monitor = SLOMonitor(slo_list) if slo_list else None
        watched = self.monitor.slos if self.monitor is not None else []
        self._latency_slos = [s for s in watched if s.kind == "latency"]
        self._queue_slos = [s for s in watched if s.kind == "queue_depth"]
        self._accuracy_slos = [s for s in watched if s.kind == "accuracy"]
        self._slo_interval = slo_interval
        self._slo_statuses: List[dict] = []
        self._alerting: List[str] = []
        self._slo_task: Optional[asyncio.Task] = None
        self.obs_port: Optional[int] = obs_port
        self._obs = (ObservabilityServer(self, obs_host, obs_port)
                     if obs_port is not None else None)
        self._latencies: deque = deque(maxlen=4096)  # (t_done, seconds)
        self._table_tick = 0
        self.records_served = 0
        self.hits_served = 0
        for shard in self.shards:
            shard.batcher.on_records = self._on_records

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> None:
        for shard in self.shards:
            shard.task = asyncio.ensure_future(self._worker(shard))
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self._obs is not None:
            await self._obs.start()
            self.obs_port = self._obs.port
        if self.monitor is not None:
            self._slo_task = asyncio.ensure_future(self._slo_loop())
        self.metrics.healthy.set(1)
        self._started_at = time.time()

    async def stop(self) -> dict:
        """Graceful drain; returns the final server stats."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
        # Readers first: a cancel interrupts the blocking frame read,
        # while any shielded dispatch runs to completion.  Each reader's
        # cleanup then closes its own writer queue and awaits the
        # writer, which in turn awaits every outstanding future -- the
        # shard workers are still running underneath, so all accepted
        # requests get answered before we proceed.  wait_closed() comes
        # after this drain: on Python >= 3.12.1 it also waits for the
        # connection handlers (our readers), so awaiting it first would
        # deadlock against any open connection.
        for conn in list(self._connections):
            if conn.reader_task is not None:
                conn.reader_task.cancel()
        await asyncio.gather(
            *(c.reader_task for c in self._connections if c.reader_task),
            return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        for shard in self.shards:
            await shard.batcher.drain()
            if shard.task is not None:
                shard.task.cancel()
        await asyncio.gather(*(s.task for s in self.shards if s.task),
                             return_exceptions=True)
        if self._slo_task is not None:
            self._slo_task.cancel()
            await asyncio.gather(self._slo_task, return_exceptions=True)
            self._slo_task = None
        if self._obs is not None:
            await self._obs.stop()
        stats = self.server_stats()
        stats["slow_requests"] = self.slow_sampler.snapshot()
        # With a state directory, a graceful drain spills every
        # spillable session -- the next process adopts them, so they
        # stay open rather than closing.  Scalar-mode sessions (and
        # everything when no store is configured) close normally.
        for shard in self.shards:
            for session_id in list(shard.sessions):
                if (self._store is not None
                        and shard.sessions[session_id].spillable):
                    self._spill(shard, session_id)
                else:
                    self._finish_session(shard, session_id)
        stats["sessions_spilled_on_drain"] = sum(
            len(s.spilled) for s in self.shards)
        return stats

    async def _worker(self, shard: _Shard) -> None:
        loop = asyncio.get_running_loop()
        fused_seen = shard.batcher.fused_records
        while True:
            batch = await shard.batcher.next_batch()
            started = loop.time()
            shard.batcher.execute(batch, shard.resolve)
            shard.batcher.task_done(len(batch))
            if self._store is not None and self.max_resident is not None:
                self._maybe_evict()
            if shard.batcher.fused_records != fused_seen:
                self.metrics.fused.inc(
                    shard.batcher.fused_records - fused_seen)
                fused_seen = shard.batcher.fused_records
            label = str(shard.index)
            self.metrics.batches.observe(len(batch), shard=label)
            self.metrics.batch_seconds.observe(loop.time() - started,
                                               shard=label)
            self.metrics.queue_depth.set(shard.batcher.qsize(), shard=label)
            # One batch per scheduling slice keeps readers responsive.
            await asyncio.sleep(0)

    # ------------------------------------------------------ observability

    def _on_records(self, session_id: int, n: int, hits: int) -> None:
        self.records_served += n
        self.hits_served += hits
        if hits:
            self.metrics.hits.inc(hits)

    async def _slo_loop(self) -> None:
        while True:
            await asyncio.sleep(self._slo_interval)
            self._slo_tick()

    def _slo_tick(self) -> None:
        """One periodic sample: queue depths and per-session accuracy
        into their SLO streams, then a burn-rate evaluation."""
        now = time.monotonic()
        for shard in self.shards:
            depth = shard.batcher.qsize()
            self.metrics.queue_depth.set(depth, shard=str(shard.index))
            for slo in self._queue_slos:
                good = 1 if depth <= slo.threshold else 0
                self.monitor.record(slo.name, good=good, bad=1 - good,
                                    now=now)
            for slo in self._accuracy_slos:
                for session in shard.sessions.values():
                    recent = session.recent_accuracy()
                    if recent is None:
                        continue
                    good = 1 if recent >= slo.threshold else 0
                    self.monitor.record(slo.name, good=good, bad=1 - good,
                                        now=now)
        self._refresh_slo_state(now)
        # Table gauges refresh on a slower multiple of the SLO cadence:
        # snapshotting scalar-mode session state costs more than a
        # counter read, and occupancy moves slowly.
        self._table_tick += 1
        if self._table_tick >= 4:
            self._table_tick = 0
            self.tables_report(include_sessions=False)

    def _refresh_slo_state(self, now: Optional[float] = None) -> List[dict]:
        """Evaluate burn rates, update gauges, and emit one telemetry
        event per alert transition (firing / resolved)."""
        statuses = self.monitor.evaluate(now)
        previous = set(self._alerting)
        alerting = [s["name"] for s in statuses if s["alerting"]]
        for status in statuses:
            self.metrics.slo_burn.set(status["fast_burn"],
                                      slo=status["name"], window="fast")
            self.metrics.slo_burn.set(status["slow_burn"],
                                      slo=status["name"], window="slow")
        run = telemetry_run_module.active_run()
        for name in alerting:
            if name not in previous:
                self.metrics.slo_alerts.inc(slo=name)
                if run is not None:
                    run.emit({"type": "slo_alert", "slo": name,
                              "state": "firing"})
        if run is not None:
            for name in previous:
                if name not in alerting:
                    run.emit({"type": "slo_alert", "slo": name,
                              "state": "resolved"})
        self._alerting = alerting
        self._slo_statuses = statuses
        self.metrics.healthy.set(0 if alerting else 1)
        return statuses

    def _finish_trace(self, trace: RequestTrace) -> None:
        """Completed-request fan-out: latency histogram (with trace-id
        exemplar), slow sample, latency SLO stream, span event."""
        latency = trace.latency_s()
        self.metrics.request_seconds.observe(
            latency, exemplar=trace.trace_id_hex, type=trace.frame_type)
        self.slow_sampler.add(trace)
        self.trace_store.put(trace.trace_id,
                             dict(trace.to_dict(), source="worker"))
        if trace.frame_type in _DATA_TYPES:
            self._latencies.append((trace.t_done, latency))
            if self.monitor is not None:
                for slo in self._latency_slos:
                    good = 1 if latency <= slo.threshold else 0
                    self.monitor.record(slo.name, good=good, bad=1 - good,
                                        now=trace.t_done)
        run = telemetry_run_module.active_run()
        if run is not None:
            run.emit({
                "type": "span",
                "name": "serve.request",
                "span_id": run.next_span_id(),
                "parent_id": None,
                "depth": 0,
                "duration_s": round(latency, 6),
                "status": trace.status,
                "attrs": trace.to_dict(),
            })

    def healthz(self) -> dict:
        """The ``/healthz`` body.  Always served (HTTP 200); overall
        health is the ``status`` field."""
        if self.monitor is not None:
            self._refresh_slo_state()
        alerting = list(self._alerting)
        if self._stopping:
            status = "draining"
        elif alerting:
            status = "degraded"
        else:
            status = "ok"
        return {
            "schema": 1,
            "status": status,
            "draining": self._stopping,
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
            "protocol_version": protocol.PROTOCOL_VERSION,
            "connections_open": len(self._connections),
            "sessions_open": sum(len(s.sessions) + len(s.spilled)
                                 for s in self.shards),
            "sessions_resident": sum(len(s.sessions) for s in self.shards),
            "sessions_spilled": sum(len(s.spilled) for s in self.shards),
            "evictions_total": sum(s.evictions for s in self.shards),
            "reloads_total": sum(s.reloads for s in self.shards),
            "snapshots_total": self.snapshots_taken,
            "releases_total": self.releases,
            "state_dir": self.state_dir,
            "state_version": STATE_VERSION if self.state_dir else None,
            "records_served": self.records_served,
            "hits_served": self.hits_served,
            "alerts": alerting,
            "slow_observed": self.slow_sampler.observed,
            "shards": [
                {"shard": s.index, "queue_depth": s.batcher.qsize(),
                 "sessions": len(s.sessions), "spilled": len(s.spilled),
                 "evictions": s.evictions, "reloads": s.reloads,
                 "batches": s.batcher.batches,
                 "items": s.batcher.items}
                for s in self.shards],
        }

    def slo_report(self) -> dict:
        """The ``/slo`` body: burn-rate statuses + live percentiles."""
        statuses = (self._refresh_slo_state()
                    if self.monitor is not None else [])
        horizon = time.monotonic() - 60.0
        window = [lat for t_done, lat in self._latencies
                  if t_done is not None and t_done >= horizon]
        return {
            "schema": 1,
            "slos": statuses,
            "alerts": [s["name"] for s in statuses if s["alerting"]],
            "healthy": not any(s["alerting"] for s in statuses),
            "latency": _latency_percentiles(window),
            "records_served": self.records_served,
            "hits_served": self.hits_served,
            "hit_rate": ((self.hits_served / self.records_served)
                         if self.records_served else None),
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
        }

    def slow_requests(self) -> dict:
        """The ``/slow`` body: top-K slowest completed requests."""
        return self.slow_sampler.snapshot()

    def trace_lookup(self, trace_id: int) -> dict:
        """The ``/trace/<id>`` body: this process's span(s) for one
        trace id (a request that revisited this worker after a client
        reconnect has several)."""
        return self.trace_store.lookup(trace_id)

    def trace_dump(self, limit: Optional[int] = None) -> dict:
        """The ``/trace`` body: the most recent completed spans."""
        return self.trace_store.dump(limit)

    def tables_report(self, include_sessions: bool = True) -> dict:
        """The ``/tables`` body: live table usage per shard and pooled.

        Walks every open session's actual table-state snapshot (see
        :meth:`~repro.serve.session.Session.table_stats`), pools the
        live-bit / hit / conflict counts per shard, and refreshes the
        ``repro_serve_table_*`` gauges as a side effect -- the SLO loop
        calls this periodically with ``include_sessions=False`` so the
        gauges stay warm between scrapes.
        """
        shards_out = []
        totals = {"sessions": 0, "live_bits": 0, "storage_bits": 0,
                  "hits": 0, "alias_accesses": 0, "alias_conflicts": 0}
        for shard in self.shards:
            live_bits = storage_bits = hits = 0
            accesses = conflicts = 0
            sessions = []
            for session in shard.sessions.values():
                stats = session.table_stats()
                live_bits += stats["live_bits"]
                storage_bits += stats["storage_bits"]
                hits += session.hits
                alias = stats["aliasing"]
                if alias is not None:
                    accesses += alias["accesses"]
                    conflicts += alias["conflicts"]
                if include_sessions:
                    sessions.append(stats)
            occupancy = live_bits / storage_bits if storage_bits else 0.0
            efficiency = hits / live_bits if live_bits else 0.0
            ratio = conflicts / accesses if accesses else 0.0
            label = str(shard.index)
            self.metrics.table_occupancy.set(occupancy, shard=label)
            self.metrics.table_live_bits.set(live_bits, shard=label)
            self.metrics.table_efficiency.set(efficiency, shard=label)
            self.metrics.table_aliasing.set(ratio, shard=label)
            entry = {
                "shard": shard.index,
                "sessions_open": len(shard.sessions),
                "live_bits": live_bits,
                "storage_bits": storage_bits,
                "occupancy": round(occupancy, 6),
                "hits": hits,
                "efficiency": round(efficiency, 9),
                "aliasing_ratio": round(ratio, 6),
            }
            if include_sessions:
                entry["sessions"] = sessions
            shards_out.append(entry)
            totals["sessions"] += len(shard.sessions)
            totals["live_bits"] += live_bits
            totals["storage_bits"] += storage_bits
            totals["hits"] += hits
            totals["alias_accesses"] += accesses
            totals["alias_conflicts"] += conflicts
        totals["occupancy"] = (
            round(totals["live_bits"] / totals["storage_bits"], 6)
            if totals["storage_bits"] else 0.0)
        totals["efficiency"] = (
            round(totals["hits"] / totals["live_bits"], 9)
            if totals["live_bits"] else 0.0)
        totals["aliasing_ratio"] = (
            round(totals["alias_conflicts"] / totals["alias_accesses"], 6)
            if totals["alias_accesses"] else 0.0)
        return {"schema": 1, "shards": shards_out, "totals": totals}

    # -------------------------------------------------------- connections

    async def _on_connection(self, reader, writer) -> None:
        if self._stopping:
            writer.close()
            return
        conn = _Connection(reader, writer)
        conn.reader_task = asyncio.current_task()
        conn.writer_task = asyncio.ensure_future(self._writer_loop(conn))
        self._connections.append(conn)
        self.metrics.connections_open.inc()
        dispatch: Optional[asyncio.Future] = None
        try:
            while True:
                frame = await _read_frame(reader)
                if frame is None:
                    break
                trace = RequestTrace(
                    trace_id=frame.trace_id or new_trace_id(),
                    frame_type=_type_name(frame.type),
                    request_id=frame.request_id,
                    version=frame.version,
                    t_recv=time.monotonic())
                dispatch = asyncio.ensure_future(
                    self._dispatch(conn, frame, trace))
                await asyncio.shield(dispatch)
                dispatch = None
        except asyncio.CancelledError:
            pass
        except protocol.ProtocolError as exc:
            self._respond_error(conn, 0, protocol.ErrorCode.BAD_FRAME,
                                str(exc))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            if dispatch is not None:
                # A cancelled reader may have been interrupted while a
                # shielded dispatch was still enqueueing; finish it so
                # its response slot exists before the sentinel.
                try:
                    await dispatch
                except Exception:
                    pass
            conn.responses.put_nowait(None)
            try:
                await conn.writer_task
            except Exception:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connections.remove(conn)
            self.metrics.connections_open.dec()

    async def _writer_loop(self, conn: _Connection) -> None:
        while True:
            slot = await conn.responses.get()
            if slot is None:
                return
            frame_type, request_id, encode, future, trace = slot
            version = (trace.version if trace is not None
                       else protocol.PROTOCOL_VERSION_V1)
            trace_id = trace.trace_id if trace is not None else 0
            if future is None:
                payload = encode  # pre-encoded immediate response
            else:
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(future), self.request_timeout)
                    if isinstance(encode, _WholeFrameEncoder):
                        payload = encode.fn(
                            result, frame_type | protocol.RESPONSE_BIT,
                            request_id, version, trace_id)
                    else:
                        payload = protocol.encode_frame(
                            frame_type | protocol.RESPONSE_BIT, request_id,
                            encode(result), version=version,
                            trace_id=trace_id)
                except asyncio.TimeoutError:
                    # The shielded future stays with the shard worker;
                    # consume its eventual exception so an abandoned
                    # failure doesn't warn "never retrieved".
                    future.add_done_callback(_consume_exception)
                    message = (f"request not served within "
                               f"{self.request_timeout:g}s")
                    if trace is not None:
                        trace.status = "timeout"
                        trace.error = message
                    payload = self._error_frame(
                        request_id, protocol.ErrorCode.TIMEOUT, message,
                        version=version, trace_id=trace_id)
                except Exception as exc:  # noqa: BLE001
                    code, message = _classify_error(exc)
                    if trace is not None:
                        trace.status = "error"
                        trace.error = message
                    payload = self._error_frame(request_id, code, message,
                                                version=version,
                                                trace_id=trace_id)
            try:
                conn.writer.write(payload)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                return
            if trace is not None:
                trace.t_done = time.monotonic()
                self._finish_trace(trace)

    # ----------------------------------------------------------- dispatch

    async def _dispatch(self, conn: _Connection, frame, trace) -> None:
        self.metrics.requests.inc(type=_type_name(frame.type))
        try:
            handler = _DISPATCH.get(frame.type)
            if handler is None:
                self._respond_error(
                    conn, frame.request_id, protocol.ErrorCode.UNKNOWN_TYPE,
                    f"unknown frame type {frame.type}", trace=trace)
                return
            await handler(self, conn, frame, trace)
        except protocol.ProtocolError as exc:
            self._respond_error(conn, frame.request_id,
                                protocol.ErrorCode.BAD_FRAME, str(exc),
                                trace=trace)

    async def _dispatch_open(self, conn, frame, trace) -> None:
        config, window = protocol.decode_open_session(frame.body)
        await self._open_session(conn, frame, trace, config, window,
                                 self._alloc_session_id())

    async def _dispatch_open_as(self, conn, frame, trace) -> None:
        session_id, config, window = protocol.decode_open_session_as(
            frame.body)
        if session_id < 1:
            self._respond_error(conn, frame.request_id,
                                protocol.ErrorCode.BAD_FRAME,
                                f"session id must be >= 1, "
                                f"got {session_id}", trace=trace)
            return
        self._note_session_id(session_id)
        await self._open_session(conn, frame, trace, config, window,
                                 session_id)

    async def _open_session(self, conn, frame, trace, config, window,
                            session_id) -> None:
        if self._stopping:
            self._respond_error(conn, frame.request_id,
                                protocol.ErrorCode.SHUTTING_DOWN,
                                "server is draining", trace=trace)
            return
        try:
            spec = spec_from_config(config)
            if window < 0:
                raise ValueError(f"window must be >= 0, got {window}")
        except (ValueError, TypeError, KeyError) as exc:
            self._respond_error(conn, frame.request_id,
                                protocol.ErrorCode.BAD_SPEC, str(exc),
                                trace=trace)
            return
        shard = self.shards[session_id % len(self.shards)]

        def run(session):
            if session is not None or session_id in shard.spilled:
                raise ValueError(f"session id {session_id} is already "
                                 f"in use")
            shard.sessions[session_id] = Session(session_id, spec, window)
            self._session_opened_at[session_id] = time.time()
            self.metrics.sessions_open.inc()
            self._touch(session_id)
            self._refresh_residency()
            if self._store is not None and self.max_resident is not None:
                self._maybe_evict()
            return session_id

        await self._submit(conn, frame, trace, shard, run=run,
                           session_id=session_id,
                           encode=protocol.encode_session_op)

    async def _dispatch_predict(self, conn, frame, trace) -> None:
        session_id, pc = protocol.decode_session_op(frame.body, 1)
        await self._submit_session(
            conn, frame, trace, session_id,
            run=lambda s: s.predict(pc),
            encode=protocol.encode_u32)

    async def _dispatch_outcome(self, conn, frame, trace) -> None:
        session_id, pc, value = protocol.decode_session_op(frame.body, 2)
        await self._submit_session(
            conn, frame, trace, session_id,
            run=lambda s: s.outcome(pc, value),
            encode=protocol.encode_u8)

    async def _dispatch_step(self, conn, frame, trace) -> None:
        session_id, pc, value = protocol.decode_session_op(frame.body, 2)
        self.metrics.records.inc()
        await self._submit(
            conn, frame, trace, self._shard_of(session_id),
            fuse_key="step",
            pcs=np.asarray([pc], dtype=np.int64),
            values=np.asarray([value], dtype=np.int64),
            session_id=session_id,
            encode=lambda res: protocol.encode_step_result(
                int(res[0][0]), res[1]))

    async def _dispatch_step_block(self, conn, frame, trace) -> None:
        session_id, pcs, values = protocol.decode_step_block_arrays(
            frame.body)
        if len(pcs):
            self.metrics.records.inc(len(pcs))
        await self._submit(
            conn, frame, trace, self._shard_of(session_id),
            fuse_key="step", pcs=pcs, values=values,
            session_id=session_id,
            encode=_BLOCK_RESULT_FRAME)

    async def _dispatch_flush(self, conn, frame, trace) -> None:
        (session_id,) = protocol.decode_session_op(frame.body, 0)
        await self._submit_session(
            conn, frame, trace, session_id,
            run=lambda s: s.pending_updates(),
            encode=protocol.encode_u32)

    async def _dispatch_stats(self, conn, frame, trace) -> None:
        (session_id,) = protocol.decode_session_op(frame.body, 0)
        if session_id == 0:
            body = protocol.encode_json_body(self.server_stats())
            self._respond_now(conn, frame, body, trace)
            return
        await self._submit_session(
            conn, frame, trace, session_id,
            run=lambda s: s.stats(),
            encode=protocol.encode_json_body)

    async def _dispatch_close(self, conn, frame, trace) -> None:
        (session_id,) = protocol.decode_session_op(frame.body, 0)
        shard = self._shard_of(session_id)

        def run(session):
            if session is None:
                raise KeyError(session_id)
            stats = self._finish_session(shard, session_id)
            if self._store is not None:
                # A closed session's state is gone by definition; the
                # arena must not resurrect it on the next restart.
                self._store.delete(session_id)
            return stats

        await self._submit(conn, frame, trace, shard, run=run,
                           session_id=session_id,
                           encode=protocol.encode_json_body)

    async def _dispatch_snapshot(self, conn, frame, trace) -> None:
        (session_id,) = protocol.decode_session_op(frame.body, 0)
        if self._store is None:
            self._respond_error(
                conn, frame.request_id,
                protocol.ErrorCode.STATE_UNAVAILABLE,
                "server is running without a state directory "
                "(start it with --state-dir to enable snapshots)",
                trace=trace)
            return

        def run(session):
            if session is None:
                raise KeyError(session_id)
            return self._snapshot_session(session)

        await self._submit(conn, frame, trace, self._shard_of(session_id),
                           run=run, session_id=session_id,
                           encode=protocol.encode_json_body)

    async def _dispatch_adopt(self, conn, frame, trace) -> None:
        """ADOPT_SESSION: take ownership of an arena in the shared
        state directory.  The session becomes addressable immediately
        (listed as spilled) and is restored lazily by the shard
        resolver on its first request -- adoption itself never loads
        table state, so re-homing N sessions is O(N) dictionary work.
        """
        (session_id,) = protocol.decode_session_op(frame.body, 0)
        if self._store is None:
            self._respond_error(
                conn, frame.request_id,
                protocol.ErrorCode.STATE_UNAVAILABLE,
                "server is running without a state directory "
                "(start it with --state-dir to enable adoption)",
                trace=trace)
            return
        shard = self._shard_of(session_id)

        def run(session):
            if session is not None or session_id in shard.spilled:
                # Idempotent: adopting a session already here is a
                # no-op, so a router retry after a torn control frame
                # is always safe.
                return {"schema": 1, "session": session_id,
                        "adopted": False, "reason": "already owned"}
            if not self._store.path_for(session_id).exists():
                raise KeyError(session_id)
            shard.spilled.add(session_id)
            self._note_session_id(session_id)
            self._session_opened_at.setdefault(session_id, time.time())
            self.metrics.sessions_open.inc()
            self.metrics.adoptions.inc()
            self._refresh_residency()
            return {"schema": 1, "session": session_id, "adopted": True,
                    "path": str(self._store.path_for(session_id))}

        await self._submit(conn, frame, trace, shard, run=run,
                           session_id=session_id,
                           encode=protocol.encode_json_body)

    async def _dispatch_release(self, conn, frame, trace) -> None:
        """RELEASE_SESSION: checkpoint to the arena and forget.

        The migration barrier: submitted through the owning shard's
        batcher like any data frame, so every STEP accepted before it
        has executed (and its response slot filled) by the time the
        release report goes out.  After a release the session is gone
        from this worker -- later frames for it get UNKNOWN_SESSION --
        and the arena belongs to whoever adopts it.
        """
        (session_id,) = protocol.decode_session_op(frame.body, 0)
        if self._store is None:
            self._respond_error(
                conn, frame.request_id,
                protocol.ErrorCode.STATE_UNAVAILABLE,
                "server is running without a state directory "
                "(start it with --state-dir to enable release)",
                trace=trace)
            return
        shard = self._shard_of(session_id)

        def run(session):
            if session is None:
                raise KeyError(session_id)
            if not session.spillable:
                raise ValueError(
                    f"session {session_id} is scalar-mode (windowed or "
                    f"non-resumable) and cannot be released for "
                    f"migration")
            arrays, meta = session.snapshot()
            nbytes = self._store.save(session_id,
                                      session.spec.to_config(), arrays,
                                      meta)
            shard.sessions.pop(session_id)
            shard.spilled.discard(session_id)
            self._last_used.pop(session_id, None)
            self._session_opened_at.pop(session_id, None)
            self.metrics.sessions_open.dec()
            self.metrics.releases.inc()
            self.releases += 1
            self._refresh_residency()
            return {"schema": 1, "session": session_id,
                    "path": str(self._store.path_for(session_id)),
                    "nbytes": nbytes, "state_version": STATE_VERSION,
                    "released": True, "hits": session.hits,
                    "predictions": session.predictions}

        await self._submit(conn, frame, trace, shard, run=run,
                           session_id=session_id,
                           encode=protocol.encode_json_body)

    # ------------------------------------------------------ durable state

    def _touch(self, session_id: int) -> None:
        self._last_used[session_id] = time.monotonic()

    def _refresh_residency(self) -> None:
        self.metrics.sessions_resident.set(
            sum(len(s.sessions) for s in self.shards))
        self.metrics.sessions_spilled.set(
            sum(len(s.spilled) for s in self.shards))

    def _resolver_for(self, shard: _Shard):
        """The shard's ``session_id -> Session | None`` resolver.

        Resident sessions come straight out of the dict; a spilled id
        is restored from its arena, re-seated as resident, and counted
        as a reload -- the caller (batch execution, admin frames) never
        sees the difference.  ``None`` means the session does not exist
        anywhere.  A :class:`StateVersionError` propagates to the
        requesting futures (the batcher routes it to the client as a
        ``STATE_VERSION`` error); a corrupt arena was quarantined by
        the store and reports as an unknown session.
        """
        def resolve(session_id: int) -> Optional[Session]:
            session = shard.sessions.get(session_id)
            if session is not None:
                self._touch(session_id)
                return session
            if self._store is None or session_id not in shard.spilled:
                return None
            arena = self._store.load(session_id)
            if arena is None:  # corrupt arena, quarantined by the store
                shard.spilled.discard(session_id)
                self._refresh_residency()
                return None
            spec = spec_from_config(arena.spec_config)
            session = Session.restore(session_id, spec, arena.state(),
                                      arena.meta)
            shard.sessions[session_id] = session
            shard.spilled.discard(session_id)
            shard.reloads += 1
            self.metrics.reloads.inc()
            self._refresh_residency()
            self._touch(session_id)
            return session
        return resolve

    def _spill(self, shard: _Shard, session_id: int) -> None:
        """Move one resident spillable session out to the arena store."""
        session = shard.sessions.pop(session_id)
        arrays, meta = session.snapshot()
        self._store.save(session_id, session.spec.to_config(), arrays,
                         meta)
        shard.spilled.add(session_id)
        shard.evictions += 1
        self.metrics.evictions.inc()
        self._refresh_residency()

    def _maybe_evict(self) -> None:
        """Spill coldest spillable sessions until the resident count is
        back under ``max_resident`` (LRU by last request time).

        Runs synchronously inside a shard worker's scheduling slice --
        all shards share one event loop, so no other worker is
        mid-batch -- and an evicted session with queued work on another
        shard simply reloads when that batch executes.
        """
        while (sum(len(s.sessions) for s in self.shards)
               > self.max_resident):
            candidates = [
                (self._last_used.get(session_id, 0.0), session_id, shard)
                for shard in self.shards
                for session_id, session in shard.sessions.items()
                if session.spillable
            ]
            if not candidates:
                return  # everything resident is scalar-mode
            _, session_id, shard = min(candidates)
            self._spill(shard, session_id)

    def _snapshot_session(self, session: Session) -> dict:
        """Explicit SNAPSHOT: checkpoint to the arena, stay resident."""
        arrays, meta = session.snapshot()
        nbytes = self._store.save(session.session_id,
                                  session.spec.to_config(), arrays, meta)
        self.snapshots_taken += 1
        self.metrics.snapshots.inc()
        return {
            "schema": 1,
            "session": session.session_id,
            "spec": session.spec.name,
            "path": str(self._store.path_for(session.session_id)),
            "nbytes": nbytes,
            "arrays": len(arrays),
            "state_version": STATE_VERSION,
        }

    # ------------------------------------------------------------ helpers

    def _shard_of(self, session_id: int) -> _Shard:
        return self.shards[session_id % len(self.shards)]

    def _alloc_session_id(self) -> int:
        session_id = self._next_session_id
        self._next_session_id += 1
        return session_id

    def _note_session_id(self, session_id: int) -> None:
        """Keep the id counter above every externally-assigned id
        (adopted arenas, router-dictated OPEN_SESSION_AS) so a plain
        OPEN_SESSION on this worker never collides."""
        self._next_session_id = max(self._next_session_id,
                                    session_id + 1)

    async def _submit_session(self, conn, frame, trace, session_id, run,
                              encode):
        def checked(session):
            if session is None:
                raise KeyError(session_id)
            return run(session)

        await self._submit(conn, frame, trace, self._shard_of(session_id),
                           run=checked, session_id=session_id, encode=encode)

    async def _submit(self, conn, frame, trace, shard, encode, run=None,
                      fuse_key=None, pcs=None, values=None,
                      session_id=None) -> None:
        future = asyncio.get_running_loop().create_future()
        trace.session_id = session_id if session_id is not None else 0
        trace.shard = shard.index
        trace.records = len(pcs) if pcs is not None else 0
        trace.t_submit = time.monotonic()
        conn.responses.put_nowait((frame.type, frame.request_id, encode,
                                   future, trace))
        item = WorkItem(session_id=session_id if session_id is not None
                        else 0, future=future, run=run, fuse_key=fuse_key,
                        pcs=pcs if pcs is not None else [],
                        values=values if values is not None else [],
                        trace=trace)
        self.metrics.queue_depth.set(shard.batcher.qsize() + 1,
                                     shard=str(shard.index))
        await shard.batcher.submit(item)

    def _respond_now(self, conn, frame, body: bytes, trace=None) -> None:
        payload = protocol.encode_frame(
            frame.type | protocol.RESPONSE_BIT, frame.request_id, body,
            version=frame.version, trace_id=frame.trace_id)
        conn.responses.put_nowait((frame.type, frame.request_id, payload,
                                   None, trace))

    def _respond_error(self, conn, request_id: int, code: int,
                       message: str, trace=None) -> None:
        if trace is not None:
            trace.status = "error"
            trace.error = message
            version, trace_id = trace.version, trace.trace_id
        else:
            version, trace_id = protocol.PROTOCOL_VERSION_V1, 0
        conn.responses.put_nowait(
            (protocol.FrameType.ERROR, request_id,
             self._error_frame(request_id, code, message,
                               version=version, trace_id=trace_id),
             None, trace))

    def _error_frame(self, request_id: int, code: int, message: str,
                     version: int = protocol.PROTOCOL_VERSION_V1,
                     trace_id: int = 0) -> bytes:
        self.metrics.errors.inc(code=_code_name(code))
        return protocol.encode_frame(
            protocol.FrameType.ERROR, request_id,
            protocol.encode_error(code, message),
            version=version, trace_id=trace_id)

    def _finish_session(self, shard: _Shard, session_id: int) -> dict:
        session = shard.sessions.pop(session_id)
        shard.spilled.discard(session_id)
        self._last_used.pop(session_id, None)
        self.metrics.sessions_open.dec()
        self._refresh_residency()
        stats = session.stats()
        opened = self._session_opened_at.pop(session_id, None)
        run = telemetry_run_module.active_run()
        if run is not None:
            run.emit({
                "type": "span",
                "name": "serve.session",
                "span_id": run.next_span_id(),
                "parent_id": None,
                "depth": 0,
                "duration_s": (round(time.time() - opened, 6)
                               if opened is not None else None),
                "status": "ok",
                "attrs": stats,
            })
        return stats

    def server_stats(self) -> dict:
        sessions = sum(len(s.sessions) + len(s.spilled)
                       for s in self.shards)
        return {
            "schema": 1,
            "sessions_open": sessions,
            "sessions_resident": sum(len(s.sessions)
                                     for s in self.shards),
            "sessions_spilled": sum(len(s.spilled) for s in self.shards),
            "evictions_total": sum(s.evictions for s in self.shards),
            "reloads_total": sum(s.reloads for s in self.shards),
            "snapshots_total": self.snapshots_taken,
            "releases_total": self.releases,
            "state_dir": self.state_dir,
            "connections_open": len(self._connections),
            "shards": len(self.shards),
            "batches": sum(s.batcher.batches for s in self.shards),
            "requests_batched": sum(s.batcher.items for s in self.shards),
            "fused_records": sum(s.batcher.fused_records
                                 for s in self.shards),
            "uptime_s": (round(time.time() - self._started_at, 3)
                         if self._started_at else 0.0),
            "draining": self._stopping,
            "records_served": self.records_served,
            "hits_served": self.hits_served,
            "slow_observed": self.slow_sampler.observed,
            "alerts": list(self._alerting),
            "obs_port": self.obs_port,
        }


_DISPATCH = {
    protocol.FrameType.OPEN_SESSION: PredictionServer._dispatch_open,
    protocol.FrameType.PREDICT: PredictionServer._dispatch_predict,
    protocol.FrameType.OUTCOME: PredictionServer._dispatch_outcome,
    protocol.FrameType.STEP: PredictionServer._dispatch_step,
    protocol.FrameType.STEP_BLOCK: PredictionServer._dispatch_step_block,
    protocol.FrameType.FLUSH: PredictionServer._dispatch_flush,
    protocol.FrameType.STATS: PredictionServer._dispatch_stats,
    protocol.FrameType.CLOSE_SESSION: PredictionServer._dispatch_close,
    protocol.FrameType.SNAPSHOT: PredictionServer._dispatch_snapshot,
    protocol.FrameType.ADOPT_SESSION: PredictionServer._dispatch_adopt,
    protocol.FrameType.RELEASE_SESSION: PredictionServer._dispatch_release,
    protocol.FrameType.OPEN_SESSION_AS: PredictionServer._dispatch_open_as,
}


#: Frame types whose latency feeds the latency SLO stream and the
#: rolling percentile window (the prediction data path; admin frames
#: like STATS would skew the percentiles).
_DATA_TYPES = frozenset({"step", "step_block", "predict", "outcome"})


def _latency_percentiles(window: List[float]) -> dict:
    """p50/p90/p99/max (ms) over the recent-latency window."""
    if not window:
        return {"count": 0}
    from repro.serve.loadgen import percentile
    ordered = sorted(window)
    return {
        "count": len(ordered),
        "p50_ms": round(percentile(ordered, 50) * 1e3, 4),
        "p90_ms": round(percentile(ordered, 90) * 1e3, 4),
        "p99_ms": round(percentile(ordered, 99) * 1e3, 4),
        "max_ms": round(ordered[-1] * 1e3, 4),
    }


def _type_name(frame_type: int) -> str:
    try:
        return protocol.FrameType(frame_type).name.lower()
    except ValueError:
        return f"unknown_{frame_type}"


def _code_name(code: int) -> str:
    try:
        return protocol.ErrorCode(code).name.lower()
    except ValueError:
        return f"code_{code}"


def _consume_exception(future: "asyncio.Future") -> None:
    if not future.cancelled():
        future.exception()


def _classify_error(exc: Exception):
    if isinstance(exc, KeyError):
        return (protocol.ErrorCode.UNKNOWN_SESSION,
                f"unknown session {exc.args[0] if exc.args else ''}")
    if isinstance(exc, StateVersionError):
        # The arena is sound but from another deploy generation: a
        # distinct code so rolling-deploy tooling can tell "refused
        # restore" from a generic failure.
        return protocol.ErrorCode.STATE_VERSION, str(exc)
    if isinstance(exc, (ValueError, protocol.ProtocolError)):
        return protocol.ErrorCode.BAD_FRAME, str(exc)
    return (protocol.ErrorCode.INTERNAL,
            f"{type(exc).__name__}: {exc}")


async def _read_frame(reader) -> Optional[protocol.Frame]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise protocol.ProtocolError("connection closed mid-frame") from exc
    length = protocol.read_length(prefix)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise protocol.ProtocolError("connection closed mid-frame") from exc
    # Decode through a memoryview: the frame body aliases the payload
    # bytes (kept alive by the view) instead of being sliced out, so
    # STEP_BLOCK records parse with no intermediate copy.
    return protocol.decode_frame(memoryview(payload))


class ServerThread:
    """A :class:`PredictionServer` on a background thread.

    Blocking API for callers without an event loop (tests, loadgen):

        with ServerThread(shards=2) as server:
            client = ServeClient("127.0.0.1", server.port)
            ...

    ``stop()`` performs the same graceful drain as the async server
    and stores the final stats in :attr:`final_stats`.

    ``use_uvloop=True`` runs the loop on uvloop when it is installed
    (silently staying on asyncio otherwise; :attr:`loop_flavor` reports
    which one actually ran).
    """

    def __init__(self, use_uvloop: bool = False, **server_kwargs):
        self._kwargs = server_kwargs
        self._loop_factory, self.loop_flavor = resolve_loop_factory(
            use_uvloop)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[PredictionServer] = None
        self.port: Optional[int] = None
        self.obs_port: Optional[int] = None
        self.final_stats: Optional[dict] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        if self._loop_factory is None:
            asyncio.run(self._main())
        else:
            with asyncio.Runner(loop_factory=self._loop_factory) as runner:
                runner.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.server = PredictionServer(**self._kwargs)
            await self.server.start()
            self.port = self.server.port
            self.obs_port = self.server.obs_port
        except BaseException as exc:  # noqa: BLE001 - rethrown in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        self.final_stats = await self.server.stop()

    def stop(self) -> Optional[dict]:
        if self._thread is None:
            return None
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop within 60s")
        self._thread = None
        return self.final_stats

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
