"""``repro top`` -- live terminal dashboard over the obs endpoint.

Polls a running server's observability endpoint (``repro serve
--obs-port``) and renders an ANSI dashboard: overall status, record
throughput and hit-rate with sparklines, latency percentiles over the
rolling window, per-shard queue depth and throughput, firing SLO
alerts with burn rates, live table usage (occupancy / efficiency /
aliasing per shard, from ``/tables``), and the current slowest
requests with their stage breakdowns.  Servers running with
``--state-dir`` additionally get a durable-state line (resident /
spilled / evictions / reloads / snapshots) and a per-shard eviction
column; against older servers those simply render as absent / ``--``.

Pointed at a cluster router's aggregated endpoint (``repro cluster
serve --obs-port``) the same dashboard additionally renders a fleet
panel -- one row per worker (pid, status, sessions, resident /
spilled / evictions, restarts, firing alerts) plus migration and
session-loss counters -- because the router's ``/healthz`` carries a
``workers`` list.  Single-process servers never report that field, so
the panel simply does not render; every other section works
identically against either endpoint.

Rates are computed client-side from counter deltas between polls, so
the server needs no extra bookkeeping for the dashboard.  ``--once``
prints a single plain snapshot (no screen control, no second poll) --
that is what CI smoke tests and scripts use.

Only the standard library is involved: plain HTTP GETs via urllib and
ANSI escape codes for the live mode (no curses dependency, so it works
on dumb terminals and in CI logs).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections import deque
from typing import List, Optional

__all__ = ["fetch_json", "sparkline", "render_dashboard", "run_top"]

_SPARK = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[H\x1b[2J"


def fetch_json(base_url: str, path: str, timeout: float = 5.0) -> dict:
    """GET ``base_url + path`` and parse the JSON body."""
    with urllib.request.urlopen(base_url.rstrip("/") + path,
                                timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def sparkline(values, width: int = 30) -> str:
    """The last *width* values as a unicode block sparkline."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return (_SPARK[0] if hi <= 0 else _SPARK[3]) * len(vals)
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - lo) / span * (len(_SPARK) - 1) + 0.5))]
        for v in vals)


class _History:
    """Counter deltas and rolling series between polls."""

    def __init__(self, depth: int = 60):
        self.t: Optional[float] = None
        self.records: Optional[int] = None
        self.shard_items: dict = {}
        self.rate_series: deque = deque(maxlen=depth)
        self.hit_series: deque = deque(maxlen=depth)

    def update(self, health: dict, slo: dict) -> dict:
        """Fold one poll in; returns {rate, shard_rates}."""
        now = time.monotonic()
        records = int(health.get("records_served", 0))
        items = {s["shard"]: int(s.get("items", 0))
                 for s in health.get("shards", [])}
        rate = None
        shard_rates = {}
        if self.t is not None:
            dt = max(now - self.t, 1e-9)
            if self.records is not None and records >= self.records:
                rate = (records - self.records) / dt
                self.rate_series.append(rate)
            for shard, count in items.items():
                prev = self.shard_items.get(shard)
                if prev is not None and count >= prev:
                    shard_rates[shard] = (count - prev) / dt
        hit_rate = slo.get("hit_rate")
        if hit_rate is not None:
            self.hit_series.append(float(hit_rate))
        self.t, self.records, self.shard_items = now, records, items
        return {"rate": rate, "shard_rates": shard_rates}


def _fmt_rate(rate: Optional[float]) -> str:
    return f"{rate:,.0f} rec/s" if rate is not None else "--"


def render_dashboard(base_url: str, health: dict, slo: dict, slow: dict,
                     rates: Optional[dict] = None,
                     history: Optional[_History] = None,
                     max_slow: int = 8,
                     tables: Optional[dict] = None) -> str:
    """One full dashboard frame as text (no screen control codes)."""
    rates = rates or {}
    lines: List[str] = []
    status = health.get("status", "?")
    lines.append(f"repro top -- {base_url}   status: {status.upper()}   "
                 f"uptime {health.get('uptime_s', 0):g}s   "
                 f"proto v{health.get('protocol_version', '?')}")
    hit_rate = slo.get("hit_rate")
    lines.append(f"sessions {health.get('sessions_open', 0)}   "
                 f"connections {health.get('connections_open', 0)}   "
                 f"records {health.get('records_served', 0):,}   "
                 f"hits {health.get('hits_served', 0):,}"
                 + (f"   hit-rate {hit_rate * 100:.1f}%"
                    if hit_rate is not None else ""))
    # Fleet summary: only a cluster router's aggregated endpoint
    # reports per-worker rows -- single servers never will.
    workers = health.get("workers") or []
    if workers:
        lines.append(
            f"cluster  {sum(1 for w in workers if w.get('alive'))}/"
            f"{len(workers)} workers up   "
            f"migrations {health.get('migrations_total', 0)}   "
            f"lost {health.get('sessions_lost_total', 0)}   "
            f"parked {health.get('sessions_parked', 0)}")
        lines.append("  worker      pid   state  sessions  resident  "
                     "spilled  evict  restarts  alerts")
        for w in workers:
            state = w.get("status", "?") if w.get("alive") else "down"
            lines.append(
                f"  {w.get('worker', '?'):>6}  {w.get('pid', 0):>7}  "
                f"{state:>6}  {w.get('sessions', 0):>8}  "
                f"{w.get('resident', 0):>8}  {w.get('spilled', 0):>7}  "
                f"{w.get('evictions', 0):>5}  {w.get('restarts', 0):>8}  "
                f"{','.join(w.get('alerts', [])) or '-'}")
    # Durable-state summary: only servers running with --state-dir
    # report these fields (older servers never will -- stay quiet).
    if "sessions_resident" in health:
        state_dir = health.get("state_dir")
        lines.append(
            f"state  resident {health.get('sessions_resident', 0)}   "
            f"spilled {health.get('sessions_spilled', 0)}   "
            f"evictions {health.get('evictions_total', 0)}   "
            f"reloads {health.get('reloads_total', 0)}   "
            f"snapshots {health.get('snapshots_total', 0)}"
            + (f"   dir {state_dir}" if state_dir else ""))
    rate_spark = sparkline(history.rate_series) if history else ""
    hit_spark = sparkline(history.hit_series) if history else ""
    lines.append(f"throughput  {_fmt_rate(rates.get('rate')):>16}  "
                 f"{rate_spark}")
    if hit_spark:
        lines.append(f"hit rate    "
                     f"{(hit_rate or 0) * 100:>15.1f}%  {hit_spark}")
    latency = slo.get("latency") or {}
    if latency.get("count"):
        lines.append(f"latency (n={latency['count']})   "
                     f"p50 {latency['p50_ms']:.3f}ms   "
                     f"p90 {latency['p90_ms']:.3f}ms   "
                     f"p99 {latency['p99_ms']:.3f}ms   "
                     f"max {latency['max_ms']:.3f}ms")
    lines.append("")
    lines.append("  shard  queue  sessions  batches     items  evict  "
                 "    rec/s")
    shard_rates = rates.get("shard_rates", {})
    for shard in health.get("shards", []):
        idx = shard["shard"]
        rate = shard_rates.get(idx)
        rate_col = f"{rate:>9,.0f}" if rate is not None else "       --"
        # Older servers report no eviction counter -- show "--".
        evict_col = (f"{shard['evictions']:>5}"
                     if "evictions" in shard else "   --")
        lines.append(f"  {idx:>5}  {shard.get('queue_depth', 0):>5}  "
                     f"{shard.get('sessions', 0):>8}  "
                     f"{shard.get('batches', 0):>7}  "
                     f"{shard.get('items', 0):>8}  {evict_col}  "
                     f"{rate_col}")
    lines.append("")
    alerts = health.get("alerts") or []
    if alerts:
        burns = {s["name"]: s for s in slo.get("slos", [])}
        parts = []
        for name in alerts:
            s = burns.get(name, {})
            parts.append(f"{name} (fast {s.get('fast_burn', 0):g}x, "
                         f"slow {s.get('slow_burn', 0):g}x)")
        lines.append("ALERTS: " + "; ".join(parts))
    else:
        lines.append("alerts: none")
    slos = slo.get("slos") or []
    if slos:
        lines.append("  slo                    kind         threshold  "
                     "objective   fast   slow  firing")
        for s in slos:
            lines.append(f"  {s['name']:<22} {s['kind']:<12} "
                         f"{s['threshold']:>9g}  {s['objective']:>9g}  "
                         f"{s['fast_burn']:>5g}  {s['slow_burn']:>5g}  "
                         f"{'YES' if s['alerting'] else 'no':>6}")
    totals = (tables or {}).get("totals") or {}
    if totals.get("storage_bits"):
        lines.append("")
        lines.append(
            f"tables  occupancy {totals.get('occupancy', 0) * 100:.1f}%   "
            f"live {totals.get('live_bits', 0):,} / "
            f"{totals.get('storage_bits', 0):,} bits   "
            f"efficiency {totals.get('efficiency', 0):.3g} hits/bit   "
            f"aliasing {totals.get('aliasing_ratio', 0) * 100:.1f}%")
        lines.append("  shard  sessions   live bits  occupancy  "
                     "efficiency  aliasing")
        for shard in tables.get("shards", []):
            lines.append(
                f"  {shard.get('shard', '?'):>5}  "
                f"{shard.get('sessions_open', 0):>8}  "
                f"{shard.get('live_bits', 0):>10,}  "
                f"{shard.get('occupancy', 0) * 100:>8.1f}%  "
                f"{shard.get('efficiency', 0):>10.3g}  "
                f"{shard.get('aliasing_ratio', 0) * 100:>7.1f}%")
    slowest = (slow.get("slowest") or [])[:max_slow]
    if slowest:
        lines.append("")
        lines.append(f"slowest requests (of {slow.get('observed', 0)} "
                     "observed)")
        lines.append("  trace_id          type        latency   "
                     "queue/fuse/exec/flush (ms)")
        for entry in slowest:
            stages = entry.get("stages_ms", {})
            breakdown = "/".join(
                f"{stages.get(stage, 0):.2f}"
                for stage in ("queue", "fuse", "execute", "flush"))
            lines.append(f"  {entry.get('trace_id', '?'):<17} "
                         f"{entry.get('type', '?'):<11} "
                         f"{entry.get('latency_ms', 0):>8.3f}ms  "
                         f"{breakdown}")
    return "\n".join(lines) + "\n"


def run_top(base_url: str, interval: float = 1.0,
            iterations: Optional[int] = None, once: bool = False,
            out=None, timeout: float = 5.0) -> int:
    """Poll *base_url* and render; returns a process exit code.

    ``once=True`` prints one plain snapshot and returns.  Otherwise
    renders a full-screen frame every *interval* seconds until
    *iterations* frames (None = until Ctrl-C).
    """
    import sys
    out = out or sys.stdout
    history = _History()
    frames = 0
    try:
        while True:
            try:
                health = fetch_json(base_url, "/healthz", timeout)
                slo = fetch_json(base_url, "/slo", timeout)
                slow = fetch_json(base_url, "/slow", timeout)
            except (urllib.error.URLError, ConnectionError, OSError,
                    json.JSONDecodeError) as exc:
                out.write(f"error: cannot poll {base_url}: {exc}\n")
                return 1
            try:
                tables = fetch_json(base_url, "/tables", timeout)
            except (urllib.error.URLError, ConnectionError, OSError,
                    json.JSONDecodeError):
                tables = None  # older server without the route
            rates = history.update(health, slo)
            frame = render_dashboard(base_url, health, slo, slow,
                                     rates=rates, history=history,
                                     tables=tables)
            if once:
                out.write(frame)
                return 0
            out.write(_CLEAR + frame)
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        out.write("\n")
        return 0
