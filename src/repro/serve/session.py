"""Per-session predictor state behind the service.

A :class:`Session` is one live predictor instance, described by a
:class:`~repro.core.spec.PredictorSpec` plus an in-flight *window*
(the delayed-update depth of :mod:`repro.core.delayed`; 0 means tables
train immediately).  Sessions are owned by exactly one shard worker,
so they need no locking.

Two execution modes, chosen automatically:

``engine``
    window 0 and :func:`~repro.core.engines.supports_resume` -- the
    session holds the canonical table-state dict and steps it through
    the warm-start batch kernels.  A whole micro-batch of records is
    one vectorised ``step_block`` call.
``scalar``
    everything else -- the session holds a stateful predictor object,
    wrapped in :class:`~repro.core.delayed.DelayedUpdatePredictor` when
    the window is non-zero, so windowed accuracy matches the offline
    harness *by construction*.

Both modes implement the same scalar contract per record: predict
first, then train (through the window when one is configured), which
is exactly what the offline engines replay.  The parity suite in
``tests/serve/`` pins served hit counts against ``measure_accuracy``
on the equivalent (possibly :class:`~repro.core.spec.DelayedSpec`
wrapped) spec.

Split PREDICT/OUTCOME traffic keeps hit accounting honest: each
PREDICT is remembered per pc (FIFO), the next OUTCOME for that pc is
scored against it.  An OUTCOME with no outstanding prediction still
trains the tables and reports :data:`Session.NO_PREDICTION`.

Engine-mode sessions are **spillable**: :meth:`Session.snapshot`
serialises the table state plus the session's auxiliary bookkeeping
(recent-hit window, outstanding predictions, aliasing counters) into
the array-dict + metadata shape that
:class:`~repro.core.state.ArenaStore` persists, and
:meth:`Session.restore` rebuilds an equivalent session from it -- the
restored tables may be the store's read-only mmap views, since the
warm-start kernels never write into their input state.  Scalar-mode
sessions (windowed or composite predictors) have no canonical state
snapshot and stay resident.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.delayed import DelayedUpdatePredictor
from repro.core.engines import initial_state, step_block, supports_resume
from repro.core.spec import PredictorSpec
from repro.telemetry.tables import level1_entries, table_stats_from_state

__all__ = ["Session"]

_MASK32 = 0xFFFFFFFF


class _AliasTracker:
    """Level-1 write-conflict bookkeeping for one live session.

    Tracks, per pc-indexed level-1 entry, the last pc that trained it;
    a training access whose entry was last written by a *different* pc
    is a conflict.  This is the live-serving counterpart of the
    offline :class:`~repro.telemetry.tables._LevelAudit` alias rate,
    kept deliberately cheap: one carried int64 array plus a vectorised
    pass per micro-batch, no per-record Python on the block path.
    """

    __slots__ = ("mask", "accesses", "conflicts", "_last_writer")

    def __init__(self, entries: int):
        self.mask = entries - 1
        self.accesses = 0
        self.conflicts = 0
        self._last_writer = np.full(entries, -1, dtype=np.int64)

    def observe(self, pc: int) -> None:
        key = (pc >> 2) & self.mask
        prev = self._last_writer[key]
        self.accesses += 1
        if prev >= 0 and prev != pc:
            self.conflicts += 1
        self._last_writer[key] = pc

    def observe_block(self, pcs: np.ndarray) -> None:
        n = len(pcs)
        if not n:
            return
        keys = (pcs >> 2) & self.mask
        order = np.argsort(keys, kind="stable")
        ks = keys[order]
        ps = pcs[order]
        is_start = np.empty(n, dtype=bool)
        is_start[0] = True
        np.not_equal(ks[1:], ks[:-1], out=is_start[1:])
        prev = np.empty(n, dtype=np.int64)
        prev[1:] = ps[:-1]
        prev[is_start] = self._last_writer[ks[is_start]]
        self.accesses += n
        self.conflicts += int(((prev >= 0) & (prev != ps)).sum())
        is_last = np.empty(n, dtype=bool)
        is_last[-1] = True
        is_last[:-1] = is_start[1:]
        self._last_writer[ks[is_last]] = ps[is_last]

    @property
    def ratio(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        return {
            "accesses": self.accesses,
            "conflicts": self.conflicts,
            "ratio": round(self.ratio, 6),
        }


class Session:
    """One served predictor: spec + window + live tables."""

    #: ``outcome`` result when no issued prediction matched the pc.
    NO_PREDICTION = 2

    #: Scored records kept for the rolling recent-accuracy window the
    #: SLO monitor samples (see :func:`recent_accuracy`).
    RECENT_WINDOW = 256

    def __init__(self, session_id: int, spec: PredictorSpec, window: int = 0):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.session_id = session_id
        self.spec = spec
        self.window = window
        self.predictions = 0
        self.outcomes = 0
        self.hits = 0
        self._issued: Dict[int, deque] = {}
        self._recent: deque = deque(maxlen=self.RECENT_WINDOW)
        l1 = level1_entries(spec)
        self._aliases = _AliasTracker(l1) if l1 else None
        if window == 0 and supports_resume(spec):
            self.mode = "engine"
            self._state = initial_state(spec)
            self._predictor = None
        else:
            self.mode = "scalar"
            self._state = None
            inner = spec.build()
            self._predictor = (DelayedUpdatePredictor(inner, window)
                               if window else inner)

    # --------------------------------------------------------------- ops

    def predict(self, pc: int) -> int:
        """Issue (and remember) a prediction for *pc*."""
        if self.mode == "engine":
            # The kernels predict before they train, so stepping a
            # throwaway copy of the state with a dummy outcome yields
            # exactly the prediction the live tables would give.
            block = np.asarray([pc], dtype=np.int64)
            predicted, _ = step_block(self.spec, self._state, block,
                                      np.zeros(1, dtype=np.int64))
            value = int(predicted[0]) & _MASK32
        else:
            value = self._predictor.predict(pc) & _MASK32
        self.predictions += 1
        self._issued.setdefault(pc, deque()).append(value)
        return value

    def outcome(self, pc: int, value: int) -> int:
        """Train on the resolved *value*; score the oldest prediction.

        Returns 1 (hit), 0 (miss), or :data:`NO_PREDICTION` when no
        prediction for this pc is outstanding.
        """
        value &= _MASK32
        queue = self._issued.get(pc)
        if queue:
            predicted = queue.popleft()
            if not queue:
                del self._issued[pc]
            hit = 1 if predicted == value else 0
            self.outcomes += 1
            self.hits += hit
            self._recent.append(hit)
        else:
            hit = self.NO_PREDICTION
        if self._aliases is not None:
            self._aliases.observe(pc)
        if self.mode == "engine":
            # Updates never depend on the prediction, so stepping the
            # live state and discarding the predicted column applies
            # exactly the scalar ``update(pc, value)``.
            _, self._state = step_block(
                self.spec, self._state,
                np.asarray([pc], dtype=np.int64),
                np.asarray([value], dtype=np.int64))
        else:
            self._predictor.update(pc, value)
        return hit

    def step(self, pc: int, value: int) -> Tuple[int, int]:
        """Predict-then-train one record; returns ``(predicted, hit)``."""
        predicted, hits = self.step_block([pc], [value])
        return int(predicted[0]), hits

    def step_block(self, pcs, values) -> Tuple[List[int], int]:
        """Predict-then-train a run of records; the micro-batch path.

        Returns the per-record predictions -- an int64 array in engine
        mode, a list in scalar mode; both index and serialise the same
        way -- and the number of hits.  Counts every record as both a
        prediction and an outcome.
        """
        if len(pcs) != len(values):
            raise ValueError(f"pcs and values lengths differ: "
                             f"{len(pcs)} vs {len(values)}")
        if not len(pcs):
            return [], 0
        if self._aliases is not None:
            self._aliases.observe_block(np.asarray(pcs, dtype=np.int64))
        if self.mode == "engine":
            block_pcs = np.asarray(pcs, dtype=np.int64)
            block_values = np.asarray(values, dtype=np.int64) & _MASK32
            predicted, self._state = step_block(
                self.spec, self._state, block_pcs, block_values)
            predicted = (predicted & _MASK32).astype(np.int64)
            matches = predicted == block_values
            hits = int(matches.sum())
            out = predicted  # stays an array: no per-record boxing
            self._recent.extend(matches.tolist())
        else:
            out = []
            hits = 0
            for pc, value in zip(pcs, values):
                value = int(value) & _MASK32
                predicted = self._predictor.predict(int(pc)) & _MASK32
                self._predictor.update(int(pc), value)
                hit = int(predicted == value)
                hits += hit
                self._recent.append(hit)
                out.append(predicted)
        self.predictions += len(out)
        self.outcomes += len(out)
        self.hits += hits
        return out, hits

    # -------------------------------------------------------- durability

    @property
    def spillable(self) -> bool:
        """Whether this session can round-trip through an arena.

        Only engine-mode sessions qualify: their whole identity is the
        canonical table-state dict plus a few counters.  Scalar-mode
        sessions hold arbitrary predictor objects (windowed wrappers,
        hybrids) with no state-injection path, so they stay resident.
        """
        return self.mode == "engine"

    def snapshot(self) -> Tuple[Dict[str, np.ndarray], dict]:
        """Serialise this session as ``(arrays, meta)`` for the store.

        *arrays* holds the table state plus auxiliary ``__``-prefixed
        arrays (recent-hit window, outstanding PREDICTs in per-pc FIFO
        order, the aliasing tracker's last-writer table); *meta* holds
        the scalar counters.  :meth:`restore` inverts it exactly.
        """
        if not self.spillable:
            raise ValueError(f"session {self.session_id} "
                             f"({self.spec.name}, window={self.window}) "
                             "is scalar-mode and cannot be snapshotted")
        arrays = dict(self._state)
        arrays["__recent"] = np.asarray(self._recent, dtype=np.int64)
        issued_pcs: List[int] = []
        issued_values: List[int] = []
        for pc, queue in self._issued.items():
            for value in queue:
                issued_pcs.append(pc)
                issued_values.append(value)
        arrays["__issued_pc"] = np.asarray(issued_pcs, dtype=np.int64)
        arrays["__issued_value"] = np.asarray(issued_values,
                                              dtype=np.int64)
        if self._aliases is not None:
            arrays["__alias_last_writer"] = self._aliases._last_writer
        meta = {
            "session_id": self.session_id,
            "spec_name": self.spec.name,
            "window": self.window,
            "predictions": self.predictions,
            "outcomes": self.outcomes,
            "hits": self.hits,
        }
        if self._aliases is not None:
            meta["alias_accesses"] = self._aliases.accesses
            meta["alias_conflicts"] = self._aliases.conflicts
        return arrays, meta

    @classmethod
    def restore(cls, session_id: int, spec: PredictorSpec,
                arrays: Dict[str, np.ndarray],
                meta: dict) -> "Session":
        """Rebuild a session from a :meth:`snapshot`-shaped payload.

        *arrays* may be read-only (the arena store's zero-copy mmap
        views): table state feeds the warm-start kernels untouched,
        and the one array the session mutates in place -- the aliasing
        tracker's last-writer table -- is copied on the way in.
        """
        session = cls(session_id, spec,
                      window=int(meta.get("window", 0)))
        if not session.spillable:
            raise ValueError(f"session {session_id}: {spec.name} with "
                             f"window {meta.get('window', 0)} does not "
                             "restore from an arena")
        session._state = {key: value for key, value in arrays.items()
                          if not key.startswith("__")}
        recent = arrays.get("__recent")
        if recent is not None:
            session._recent.extend(int(hit) for hit in recent)
        issued_pcs = arrays.get("__issued_pc")
        issued_values = arrays.get("__issued_value")
        if issued_pcs is not None and issued_values is not None:
            for pc, value in zip(issued_pcs.tolist(),
                                 issued_values.tolist()):
                session._issued.setdefault(pc, deque()).append(value)
        last_writer = arrays.get("__alias_last_writer")
        if session._aliases is not None and last_writer is not None:
            session._aliases._last_writer = np.array(last_writer,
                                                     dtype=np.int64)
            session._aliases.accesses = int(meta.get("alias_accesses", 0))
            session._aliases.conflicts = int(meta.get("alias_conflicts",
                                                      0))
        session.predictions = int(meta.get("predictions", 0))
        session.outcomes = int(meta.get("outcomes", 0))
        session.hits = int(meta.get("hits", 0))
        return session

    # ------------------------------------------------------------- admin

    def pending_updates(self) -> int:
        """Buffered (windowed, not yet applied) updates."""
        if isinstance(self._predictor, DelayedUpdatePredictor):
            return self._predictor.pending_updates()
        return 0

    def outstanding_predictions(self) -> int:
        """PREDICTs issued but not yet matched by an OUTCOME."""
        return sum(len(q) for q in self._issued.values())

    def recent_accuracy(self) -> Optional[float]:
        """Hit rate over the last :data:`RECENT_WINDOW` scored records
        (``None`` until anything has been scored) -- the per-session
        signal behind the accuracy-floor SLO."""
        if not self._recent:
            return None
        return sum(self._recent) / len(self._recent)

    def table_state(self) -> Dict[str, np.ndarray]:
        """The live table-state snapshot, whichever mode holds it."""
        if self.mode == "engine":
            return self._state
        inner = (self._predictor.inner
                 if isinstance(self._predictor, DelayedUpdatePredictor)
                 else self._predictor)
        return self.spec.extract_state(inner)

    def table_stats(self) -> dict:
        """Live table-usage statistics for this session: per-table
        liveness from the actual state arrays, served hits per live
        bit, and the level-1 write-conflict (aliasing) counters."""
        stats = table_stats_from_state(self.spec, self.table_state())
        stats["session"] = self.session_id
        stats["spec"] = self.spec.name
        stats["family"] = self.spec.family
        stats["hits"] = self.hits
        stats["efficiency"] = (round(self.hits / stats["live_bits"], 9)
                               if stats["live_bits"] else 0.0)
        stats["aliasing"] = (self._aliases.snapshot()
                             if self._aliases is not None else None)
        return stats

    def stats(self) -> dict:
        return {
            "session": self.session_id,
            "spec": self.spec.name,
            "family": self.spec.family,
            "window": self.window,
            "mode": self.mode,
            "predictions": self.predictions,
            "outcomes": self.outcomes,
            "hits": self.hits,
            "accuracy": (self.hits / self.outcomes) if self.outcomes else None,
            "recent_accuracy": self.recent_accuracy(),
            "pending_updates": self.pending_updates(),
            "outstanding_predictions": self.outstanding_predictions(),
        }
