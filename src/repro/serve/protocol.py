"""The wire protocol: versioned, length-prefixed binary frames.

Every frame is::

    u32  length   -- bytes that follow (big-endian, like all fields)
    u8   version  -- one of SUPPORTED_VERSIONS; others are rejected
    u8   type     -- FrameType
    u32  request_id -- echoed verbatim in the response
    u64  trace_id -- version >= 2 only; 0 = unassigned
    ...  body     -- type-specific, see below

Version 2 adds the ``trace_id`` header field: a client-chosen 64-bit
id threaded through every server stage (queue, fuse, execute, flush)
and echoed on the response, so one request can be found in spans, the
slow-request sample, and histogram exemplars.  Negotiation is
per-frame and backward compatible in both directions: a server decodes
whichever supported version a frame announces and answers in that same
version (version-1 requests get a server-assigned trace id
internally, but their responses stay version 1); a version-2 client
talking to a version-1-only server has its first request rejected
(``BAD_FRAME``/``BAD_VERSION``) and silently re-connects speaking
version 1 -- see :class:`repro.serve.client.ServeClient`.

Responses reuse the request's type with the high bit set
(``RESPONSE_BIT``); errors use :data:`FrameType.ERROR` regardless of
the request type.  Responses on one connection are written in request
order, so clients may pipeline freely and match replies positionally
or by ``request_id``.

Request bodies::

    OPEN_SESSION   u32 window | u32 len | spec config JSON (utf-8)
    PREDICT        u64 session | u32 pc
    OUTCOME        u64 session | u32 pc | u32 value
    STEP           u64 session | u32 pc | u32 value
    STEP_BLOCK     u64 session | u32 count | count * (u32 pc, u32 value)
    FLUSH          u64 session
    STATS          u64 session (0 = server-wide)
    CLOSE_SESSION  u64 session
    SNAPSHOT       u64 session
    ADOPT_SESSION  u64 session
    RELEASE_SESSION u64 session
    OPEN_SESSION_AS u64 session | u32 window | u32 len | config JSON

Response bodies::

    OPEN_SESSION   u64 session
    PREDICT        u32 predicted
    OUTCOME        u8 hit (0/1/2; 2 = no matching issued prediction)
    STEP           u32 predicted | u8 hit
    STEP_BLOCK     u32 count | u32 hits | count * u32 predicted
    FLUSH          u32 pending (buffered delayed updates)
    STATS          u32 len | stats JSON (utf-8)
    CLOSE_SESSION  u32 len | final stats JSON (utf-8)
    SNAPSHOT       u32 len | snapshot report JSON (utf-8)
    ADOPT_SESSION  u32 len | adoption report JSON (utf-8)
    RELEASE_SESSION u32 len | release report JSON (utf-8)
    OPEN_SESSION_AS u64 session
    ERROR          u16 code | u32 len | message (utf-8)

SNAPSHOT is the durability barrier of the state lifecycle (see
:mod:`repro.core.state`): it checkpoints the session's tables to its
arena file while leaving the session resident, so a client that wants
kill-safety can force a write-out instead of waiting for LRU eviction.
The server must have a state directory configured
(``STATE_UNAVAILABLE`` otherwise) and the session must be engine-mode
(scalar sessions report ``BAD_FRAME``).

ADOPT_SESSION, RELEASE_SESSION and OPEN_SESSION_AS are the cluster
control plane (:mod:`repro.serve.cluster`): the router tier uses
OPEN_SESSION_AS to dictate a globally-unique session id to a worker
(the body is OPEN_SESSION's with the session id prepended),
RELEASE_SESSION to checkpoint a session to its arena and relinquish
ownership (the migration barrier: it rides the same per-session FIFO
as data frames, so every in-flight STEP completes first), and
ADOPT_SESSION to hand the arena to another worker, which restores it
lazily on the session's next request.  All three need a state
directory (``STATE_UNAVAILABLE`` otherwise, except OPEN_SESSION_AS)
and are valid from any peer -- a single-process deployment can drive
them directly for warm handoffs between servers sharing a state dir.

The spec config JSON is exactly
:meth:`repro.core.spec.PredictorSpec.to_config`, so any predictor the
spec layer can describe can be served.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["PROTOCOL_VERSION", "PROTOCOL_VERSION_V1", "SUPPORTED_VERSIONS",
           "MAX_FRAME_BYTES", "RESPONSE_BIT",
           "FrameType", "ErrorCode", "ProtocolError", "TornFrameError",
           "Frame",
           "encode_frame", "decode_frame", "read_frame_blocking",
           "BlockingFrameReader",
           "encode_open_session", "decode_open_session",
           "encode_open_session_as", "decode_open_session_as",
           "encode_session_op", "decode_session_op",
           "encode_step_block", "decode_step_block",
           "decode_step_block_arrays",
           "encode_block_result", "encode_block_result_frame",
           "decode_block_result",
           "encode_json_body", "decode_json_body",
           "encode_u8", "decode_u8", "encode_u32", "decode_u32",
           "encode_step_result", "decode_step_result",
           "encode_error", "decode_error"]

PROTOCOL_VERSION = 2
PROTOCOL_VERSION_V1 = 1
SUPPORTED_VERSIONS = (1, 2)

#: Upper bound on a frame's declared length; a peer announcing more is
#: protocol-broken (or hostile) and the connection is dropped.
MAX_FRAME_BYTES = 1 << 22

RESPONSE_BIT = 0x80

_HEADER = struct.Struct("!BBI")    # version, type, request_id
_TRACE_ID = struct.Struct("!Q")    # version >= 2 extension
_LENGTH = struct.Struct("!I")


class FrameType(enum.IntEnum):
    OPEN_SESSION = 1
    PREDICT = 2
    OUTCOME = 3
    STEP = 4
    STEP_BLOCK = 5
    FLUSH = 6
    STATS = 7
    CLOSE_SESSION = 8
    SNAPSHOT = 9
    ADOPT_SESSION = 10
    RELEASE_SESSION = 11
    OPEN_SESSION_AS = 12
    ERROR = 0x7F


class ErrorCode(enum.IntEnum):
    BAD_VERSION = 1
    BAD_FRAME = 2
    UNKNOWN_TYPE = 3
    UNKNOWN_SESSION = 4
    BAD_SPEC = 5
    TIMEOUT = 6
    SHUTTING_DOWN = 7
    INTERNAL = 8
    #: The session's arena was written by a different state-layout
    #: generation (rolling deploy); restore is refused, never guessed.
    STATE_VERSION = 9
    #: SNAPSHOT on a server running without a state directory.
    STATE_UNAVAILABLE = 10


class ProtocolError(Exception):
    """A malformed, oversized, or version-mismatched frame."""


class TornFrameError(ProtocolError, ConnectionError):
    """The connection died mid-frame: a transport failure, not a
    protocol violation -- :class:`repro.serve.client.ServeClient` may
    transparently reconnect and retry on it."""


@dataclass(frozen=True)
class Frame:
    type: int
    request_id: int
    body: bytes
    version: int = PROTOCOL_VERSION
    trace_id: int = 0

    @property
    def is_response(self) -> bool:
        return bool(self.type & RESPONSE_BIT) or self.type == FrameType.ERROR

    @property
    def request_type(self) -> int:
        """The request FrameType this frame is (a response) for."""
        return self.type & ~RESPONSE_BIT


def _frame_buffer(frame_type: int, request_id: int, body_len: int,
                  version: int, trace_id: int) -> Tuple[bytearray, int]:
    """One preallocated buffer for a whole frame (length prefix included),
    with the prefix and header already written; returns ``(buffer,
    body_offset)`` so callers serialise the body straight into place."""
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"cannot encode protocol version {version}; "
                            f"supported: {list(SUPPORTED_VERSIONS)}")
    head = _HEADER.size + (_TRACE_ID.size if version >= 2 else 0)
    if head + body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {head + body_len} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    out = bytearray(_LENGTH.size + head + body_len)
    _LENGTH.pack_into(out, 0, head + body_len)
    _HEADER.pack_into(out, _LENGTH.size, version, frame_type,
                      request_id & 0xFFFFFFFF)
    if version >= 2:
        _TRACE_ID.pack_into(out, _LENGTH.size + _HEADER.size,
                            trace_id & 0xFFFFFFFFFFFFFFFF)
    return out, _LENGTH.size + head


def encode_frame(frame_type: int, request_id: int, body: bytes = b"",
                 version: int = PROTOCOL_VERSION, trace_id: int = 0) -> bytes:
    out, offset = _frame_buffer(frame_type, request_id, len(body),
                                version, trace_id)
    out[offset:] = body
    return bytes(out)


def decode_frame(payload: bytes) -> Frame:
    """Decode the bytes *after* the length prefix into a :class:`Frame`."""
    if len(payload) < _HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(payload)} bytes)")
    version, frame_type, request_id = _HEADER.unpack_from(payload)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"protocol version {version}, "
                            f"expected one of {list(SUPPORTED_VERSIONS)}")
    trace_id = 0
    offset = _HEADER.size
    if version >= 2:
        if len(payload) < offset + _TRACE_ID.size:
            raise ProtocolError(
                f"truncated v{version} frame header ({len(payload)} bytes)")
        (trace_id,) = _TRACE_ID.unpack_from(payload, offset)
        offset += _TRACE_ID.size
    return Frame(frame_type, request_id, payload[offset:],
                 version=version, trace_id=trace_id)


def read_length(prefix: bytes) -> int:
    """Validate and decode a frame's 4-byte length prefix."""
    (length,) = _LENGTH.unpack(prefix)
    if length < _HEADER.size:
        raise ProtocolError(f"frame length {length} below header size")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return length


class BlockingFrameReader:
    """Zero-copy frame reader for one blocking socket.

    Frames are received with ``recv_into`` a single reusable buffer
    (grown geometrically, never shrunk): no per-chunk allocations, no
    ``join``.  :meth:`read_frame` parses the frame straight out of a
    memoryview of that buffer; the returned frame's ``body`` therefore
    aliases the buffer and is only valid until the next call.  Pass
    ``copy=True`` (or use :func:`read_frame_blocking`) to detach the
    body when it must outlive the next read.
    """

    __slots__ = ("_sock", "_buf")

    def __init__(self, sock):
        self._sock = sock
        self._buf = bytearray(4096)

    def read_frame(self, copy: bool = False) -> Optional[Frame]:
        """Read one frame; ``None`` on clean EOF at a frame boundary."""
        prefix = self._recv_exact(_LENGTH.size, eof_ok=True)
        if prefix is None:
            return None
        length = read_length(prefix)
        payload = self._recv_exact(length)
        frame = decode_frame(payload)
        if copy:
            frame = Frame(frame.type, frame.request_id, bytes(frame.body),
                          version=frame.version, trace_id=frame.trace_id)
        return frame

    def _recv_exact(self, n: int,
                    eof_ok: bool = False) -> Optional[memoryview]:
        """Exactly *n* bytes into the reusable buffer; ``None`` only on
        EOF before the first byte (and only when *eof_ok*)."""
        if len(self._buf) < n:
            self._buf = bytearray(max(n, 2 * len(self._buf)))
        view = memoryview(self._buf)[:n]
        received = 0
        while received < n:
            got = self._sock.recv_into(view[received:])
            if not got:
                if received == 0 and eof_ok:
                    return None
                raise TornFrameError("connection closed mid-frame")
            received += got
        return view


def read_frame_blocking(sock) -> Optional[Frame]:
    """Read one frame from a blocking socket; None on clean EOF.

    One-shot convenience over :class:`BlockingFrameReader`; the frame's
    body is detached (copied), so it stays valid indefinitely.  Loops
    reading many frames should hold one reader instead.
    """
    return BlockingFrameReader(sock).read_frame(copy=True)


# ------------------------------------------------------------- bodies

_OPEN = struct.Struct("!II")
_SESSION = struct.Struct("!Q")
_SESSION_PC = struct.Struct("!QI")
_SESSION_PC_VALUE = struct.Struct("!QII")
_BLOCK_HEAD = struct.Struct("!QI")
_RESULT_HEAD = struct.Struct("!II")
_ERROR_HEAD = struct.Struct("!HI")
_U32 = struct.Struct("!I")
_U8 = struct.Struct("!B")
_STEP_RESULT = struct.Struct("!IB")


def encode_open_session(config: dict, window: int) -> bytes:
    blob = json.dumps(config, sort_keys=True).encode()
    return _OPEN.pack(window, len(blob)) + blob


def decode_open_session(body: bytes) -> Tuple[dict, int]:
    try:
        window, length = _OPEN.unpack_from(body)
        blob = bytes(body[_OPEN.size:_OPEN.size + length])
        if len(blob) != length:
            raise ProtocolError("truncated OPEN_SESSION config")
        return json.loads(blob.decode()), window
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad OPEN_SESSION body: {exc}") from exc


def encode_open_session_as(session: int, config: dict,
                           window: int) -> bytes:
    """OPEN_SESSION_AS: an OPEN_SESSION body with the (router-assigned)
    session id prepended -- the layout lets a proxy build it from a
    client's OPEN_SESSION frame by prefixing 8 bytes, never re-encoding
    the config JSON."""
    return _SESSION.pack(session) + encode_open_session(config, window)


def decode_open_session_as(body: bytes) -> Tuple[int, dict, int]:
    try:
        (session,) = _SESSION.unpack_from(body)
    except struct.error as exc:
        raise ProtocolError(f"bad OPEN_SESSION_AS body: {exc}") from exc
    config, window = decode_open_session(
        memoryview(body)[_SESSION.size:])
    return session, config, window


def encode_session_op(session: int, pc: Optional[int] = None,
                      value: Optional[int] = None) -> bytes:
    if pc is None:
        return _SESSION.pack(session)
    if value is None:
        return _SESSION_PC.pack(session, pc & 0xFFFFFFFF)
    return _SESSION_PC_VALUE.pack(session, pc & 0xFFFFFFFF,
                                  value & 0xFFFFFFFF)


def decode_session_op(body: bytes, fields: int) -> tuple:
    """Decode a session body with 0, 1 (pc) or 2 (pc, value) operands."""
    layout = (_SESSION, _SESSION_PC, _SESSION_PC_VALUE)[fields]
    try:
        return layout.unpack(body)
    except struct.error as exc:
        raise ProtocolError(f"bad session op body: {exc}") from exc


def encode_step_block(session: int, pcs, values) -> bytes:
    if len(pcs) != len(values):
        raise ProtocolError("step block pcs/values lengths differ")
    count = len(pcs)
    out = bytearray(_BLOCK_HEAD.size + 8 * count)
    _BLOCK_HEAD.pack_into(out, 0, session, count)
    if count:
        # Interleave (pc, value) pairs straight into the body as
        # big-endian words -- no per-record Python packing.
        words = np.frombuffer(out, dtype=">u4", count=2 * count,
                              offset=_BLOCK_HEAD.size).reshape(-1, 2)
        np.bitwise_and(np.asarray(pcs, dtype=np.int64), 0xFFFFFFFF,
                       out=words[:, 0], casting="unsafe")
        np.bitwise_and(np.asarray(values, dtype=np.int64), 0xFFFFFFFF,
                       out=words[:, 1], casting="unsafe")
    return bytes(out)


def decode_step_block_arrays(body) -> Tuple[int, np.ndarray, np.ndarray]:
    """STEP_BLOCK body -> ``(session, pcs, values)`` as int64 arrays.

    *body* may be any buffer (bytes or a frame-reader memoryview): the
    record words are read through a zero-copy big-endian view and only
    materialised once, as the int64 arrays the kernels want anyway.
    """
    try:
        session, count = _BLOCK_HEAD.unpack_from(body)
    except struct.error as exc:
        raise ProtocolError(f"bad STEP_BLOCK body: {exc}") from exc
    if len(body) < _BLOCK_HEAD.size + 8 * count:
        raise ProtocolError(
            f"bad STEP_BLOCK body: {count} records announced, "
            f"{len(body) - _BLOCK_HEAD.size} payload bytes present")
    words = np.frombuffer(body, dtype=">u4", count=2 * count,
                          offset=_BLOCK_HEAD.size).reshape(-1, 2)
    return (session, words[:, 0].astype(np.int64),
            words[:, 1].astype(np.int64))


def decode_step_block(body: bytes) -> Tuple[int, List[int], List[int]]:
    session, pcs, values = decode_step_block_arrays(body)
    return session, pcs.tolist(), values.tolist()


def encode_block_result(predicted, hits: int) -> bytes:
    count = len(predicted)
    out = bytearray(_RESULT_HEAD.size + 4 * count)
    _RESULT_HEAD.pack_into(out, 0, count, hits)
    _fill_block_result(out, _RESULT_HEAD.size, predicted)
    return bytes(out)


def encode_block_result_frame(frame_type: int, request_id: int, predicted,
                              hits: int, version: int = PROTOCOL_VERSION,
                              trace_id: int = 0) -> bytearray:
    """A complete STEP_BLOCK response frame in one allocation.

    The hot-path equivalent of ``encode_frame(...,
    encode_block_result(...))``: the predicted values are written
    straight into the preallocated wire buffer as big-endian words,
    so a large response is never copied through an intermediate body.
    """
    count = len(predicted)
    out, offset = _frame_buffer(frame_type, request_id,
                                _RESULT_HEAD.size + 4 * count,
                                version, trace_id)
    _RESULT_HEAD.pack_into(out, offset, count, hits)
    _fill_block_result(out, offset + _RESULT_HEAD.size, predicted)
    return out


def _fill_block_result(out: bytearray, offset: int, predicted) -> None:
    count = len(predicted)
    if not count:
        return
    view = np.frombuffer(out, dtype=">u4", count=count, offset=offset)
    np.bitwise_and(np.asarray(predicted, dtype=np.int64), 0xFFFFFFFF,
                   out=view, casting="unsafe")


def decode_block_result(body: bytes) -> Tuple[List[int], int]:
    try:
        count, hits = _RESULT_HEAD.unpack_from(body)
        predicted = struct.unpack_from(f"!{count}I", body, _RESULT_HEAD.size)
    except struct.error as exc:
        raise ProtocolError(f"bad STEP_BLOCK result: {exc}") from exc
    return list(predicted), hits


def encode_json_body(payload: dict) -> bytes:
    blob = json.dumps(payload, sort_keys=True).encode()
    return _U32.pack(len(blob)) + blob


def decode_json_body(body: bytes) -> dict:
    try:
        (length,) = _U32.unpack_from(body)
        blob = bytes(body[_U32.size:_U32.size + length])
        if len(blob) != length:
            raise ProtocolError("truncated JSON body")
        return json.loads(blob.decode())
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON body: {exc}") from exc


def encode_u8(value: int) -> bytes:
    return _U8.pack(value & 0xFF)


def decode_u8(body: bytes) -> int:
    try:
        return _U8.unpack(body)[0]
    except struct.error as exc:
        raise ProtocolError(f"bad u8 body: {exc}") from exc


def encode_u32(value: int) -> bytes:
    return _U32.pack(value & 0xFFFFFFFF)


def decode_u32(body: bytes) -> int:
    try:
        return _U32.unpack(body)[0]
    except struct.error as exc:
        raise ProtocolError(f"bad u32 body: {exc}") from exc


def encode_step_result(predicted: int, hit: int) -> bytes:
    return _STEP_RESULT.pack(predicted & 0xFFFFFFFF, hit & 0xFF)


def decode_step_result(body: bytes) -> Tuple[int, int]:
    try:
        return _STEP_RESULT.unpack(body)
    except struct.error as exc:
        raise ProtocolError(f"bad STEP result: {exc}") from exc


def encode_error(code: int, message: str) -> bytes:
    blob = message.encode()
    return _ERROR_HEAD.pack(code, len(blob)) + blob


def decode_error(body: bytes) -> Tuple[int, str]:
    try:
        code, length = _ERROR_HEAD.unpack_from(body)
        return code, bytes(
            body[_ERROR_HEAD.size:_ERROR_HEAD.size + length]).decode()
    except (struct.error, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad ERROR body: {exc}") from exc
