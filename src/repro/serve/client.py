"""Blocking client for the prediction service.

:class:`ServeClient` wraps one TCP connection with a plain synchronous
call-per-frame API -- the shape the load generator, the test suite and
any scripting caller wants.  One request is one round trip; the
pipelined (many requests in flight) path lives in
:mod:`repro.serve.loadgen`, built on the same frame helpers.

The client speaks protocol version 2 by default: every logical
request carries a 64-bit trace id, allocated once in
:meth:`ServeClient.request` and pinned across transparent-reconnect
re-sends, so a request that survives a server restart stays a single
trace (the last id used is kept in
:attr:`ServeClient.last_trace_id` so callers can correlate their
request with server-side spans, ``/trace/<id>`` lookups and the
slow-request sample).  Talking
to an older, version-1-only server is transparent: the first request
comes back rejected, the client re-connects speaking version 1 --
without trace ids -- and retries.  Pin ``version=1`` to skip the
probe.

A torn connection (ECONNRESET from a restarting server, a router
re-homing this session mid-migration, a worker killed under the
request) is retried transparently: the client reconnects with bounded
exponential backoff and re-sends the request, up to ``reconnect``
attempts (default 3; pass ``reconnect=0`` to surface transport errors
raw).  The retry is idempotent against a cluster router's planned
migrations and SIGTERM drains -- every accepted frame is answered
before a worker closes -- but a SIGKILL between execution and response
can apply a re-sent STEP twice; callers needing exactly-once across
hard kills should fence with SNAPSHOT (see docs/state.md).

Server-side errors surface as :class:`ServeError` carrying the
protocol error code; transport and framing problems (once retries are
exhausted) raise :class:`~repro.serve.protocol.ProtocolError` /
``ConnectionError``.
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import List, Optional, Tuple

from repro.core.spec import PredictorSpec
from repro.serve import protocol
from repro.serve.tracing import new_trace_id

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An ERROR response from the server."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{protocol_code_name(code)}] {message}")
        self.code = code
        self.message = message


def protocol_code_name(code: int) -> str:
    try:
        return protocol.ErrorCode(code).name
    except ValueError:
        return f"code_{code}"


class ServeClient:
    """One blocking connection to a :class:`PredictionServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0,
                 version: int = protocol.PROTOCOL_VERSION,
                 reconnect: int = 3,
                 reconnect_backoff: float = 0.05,
                 reconnect_backoff_max: float = 2.0):
        if version not in protocol.SUPPORTED_VERSIONS:
            raise protocol.ProtocolError(
                f"unsupported protocol version {version}; supported: "
                f"{list(protocol.SUPPORTED_VERSIONS)}")
        if reconnect < 0:
            raise ValueError(f"reconnect must be >= 0, got {reconnect}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.protocol_version = version
        self.last_trace_id = 0
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_max = reconnect_backoff_max
        #: Successful transparent reconnects performed so far.
        self.reconnects = 0
        self._request_ids = itertools.count(1)
        # Version 1 needs no probe; higher versions are confirmed by
        # the first successful round trip (see ``request``).
        self._negotiated = version == protocol.PROTOCOL_VERSION_V1
        self.sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # One reusable receive buffer per connection: responses are
        # parsed in place (see BlockingFrameReader) and fully consumed
        # before the next read, so no copies are needed.
        self._reader = protocol.BlockingFrameReader(sock)
        return sock

    # ---------------------------------------------------------- transport

    def request(self, frame_type: int, body: bytes) -> protocol.Frame:
        """Send one frame, block for its response frame.

        Handles version negotiation (an un-negotiated connection whose
        first request is rejected for speaking an unknown version
        re-connects as version 1 and retries once) and transparent
        reconnect: a torn connection re-dials with bounded exponential
        backoff and re-sends the request, up to :attr:`reconnect`
        times per request.

        The trace id is allocated once per *logical* request, here,
        and pinned across every re-send: a request that survives a
        reconnect stays one trace end to end, so server-side spans and
        slow samples from before and after the tear correlate.
        """
        trace_id = (new_trace_id()
                    if self.protocol_version >= 2 else 0)
        failures = 0
        while True:
            if self.sock is None:
                # The previous attempt tore the connection down;
                # re-dial before re-sending.  A refused dial consumes
                # budget like any other failure -- the server may
                # still be restarting.
                try:
                    self.sock = self._connect()
                    self.reconnects += 1
                except OSError:
                    failures += 1
                    if failures > self.reconnect:
                        raise
                    self._backoff(failures)
                    continue
            try:
                # TornFrameError subclasses ConnectionError, and
                # ConnectionError / socket.timeout subclass OSError:
                # one clause covers every transport failure.  Protocol
                # violations (ProtocolError) and server-side errors
                # (ServeError) are never retried.
                return self._request_once(frame_type, body, trace_id)
            except OSError:
                failures += 1
                if failures > self.reconnect:
                    raise
                self._backoff(failures)
                self.close()
                self.sock = None

    def _request_once(self, frame_type: int, body: bytes,
                      trace_id: Optional[int] = None) -> protocol.Frame:
        request_id = self.send(frame_type, body, trace_id)
        try:
            frame = self.recv()
        except ServeError as exc:
            if self._should_downgrade(exc):
                self._downgrade()
                return self._request_once(frame_type, body, trace_id)
            raise
        self._negotiated = True
        if frame is None:
            raise ConnectionError("server closed the connection")
        if frame.request_id != request_id:
            raise protocol.ProtocolError(
                f"response for request {frame.request_id}, "
                f"expected {request_id}")
        return frame

    def _backoff(self, failures: int) -> None:
        delay = min(self.reconnect_backoff * (2 ** (failures - 1)),
                    self.reconnect_backoff_max)
        if delay > 0:
            time.sleep(delay)

    def _should_downgrade(self, exc: "ServeError") -> bool:
        return (not self._negotiated
                and self.protocol_version > protocol.PROTOCOL_VERSION_V1
                and exc.code in (protocol.ErrorCode.BAD_VERSION,
                                 protocol.ErrorCode.BAD_FRAME)
                and "version" in exc.message)

    def _downgrade(self) -> None:
        self.close()
        self.protocol_version = protocol.PROTOCOL_VERSION_V1
        self._negotiated = True
        self.sock = self._connect()

    def send(self, frame_type: int, body: bytes,
             trace_id: Optional[int] = None) -> int:
        """Fire one request frame without waiting; returns its id.

        Pass *trace_id* to pin one (the retry path does, so a re-sent
        frame keeps its original id); omit it for a fresh one."""
        request_id = next(self._request_ids)
        if trace_id is None:
            trace_id = (new_trace_id()
                        if self.protocol_version >= 2 else 0)
        if self.protocol_version < 2:
            trace_id = 0  # v1 frames have no trace-id slot
        self.last_trace_id = trace_id
        self.sock.sendall(protocol.encode_frame(
            frame_type, request_id, body,
            version=self.protocol_version, trace_id=trace_id))
        return request_id

    def recv(self) -> Optional[protocol.Frame]:
        """Read one response frame; raises :class:`ServeError` on ERROR.

        The frame's body aliases the connection's receive buffer and is
        valid until the next ``recv`` -- every caller in this class
        decodes it immediately.
        """
        frame = self._reader.read_frame()
        if frame is not None and frame.type == protocol.FrameType.ERROR:
            raise ServeError(*protocol.decode_error(frame.body))
        return frame

    def close(self) -> None:
        if self.sock is None:
            return
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- api

    def open_session(self, spec: PredictorSpec, window: int = 0) -> int:
        frame = self.request(
            protocol.FrameType.OPEN_SESSION,
            protocol.encode_open_session(spec.to_config(), window))
        return protocol.decode_session_op(frame.body, 0)[0]

    def predict(self, session: int, pc: int) -> int:
        frame = self.request(protocol.FrameType.PREDICT,
                             protocol.encode_session_op(session, pc))
        return protocol.decode_u32(frame.body)

    def outcome(self, session: int, pc: int, value: int) -> int:
        frame = self.request(
            protocol.FrameType.OUTCOME,
            protocol.encode_session_op(session, pc, value))
        return protocol.decode_u8(frame.body)

    def step(self, session: int, pc: int, value: int) -> Tuple[int, int]:
        frame = self.request(
            protocol.FrameType.STEP,
            protocol.encode_session_op(session, pc, value))
        return protocol.decode_step_result(frame.body)

    def step_block(self, session: int, pcs,
                   values) -> Tuple[List[int], int]:
        frame = self.request(protocol.FrameType.STEP_BLOCK,
                             protocol.encode_step_block(session, pcs,
                                                        values))
        return protocol.decode_block_result(frame.body)

    def flush(self, session: int) -> int:
        frame = self.request(protocol.FrameType.FLUSH,
                             protocol.encode_session_op(session))
        return protocol.decode_u32(frame.body)

    def stats(self, session: int = 0) -> dict:
        frame = self.request(protocol.FrameType.STATS,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    def close_session(self, session: int) -> dict:
        frame = self.request(protocol.FrameType.CLOSE_SESSION,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    def snapshot(self, session: int) -> dict:
        """Checkpoint the session's tables to its arena (durability
        barrier): returns the snapshot report.  The session stays
        resident and keeps serving; requires the server to run with a
        state directory."""
        frame = self.request(protocol.FrameType.SNAPSHOT,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    # ------------------------------------------------- cluster control

    def open_session_as(self, session: int, spec: PredictorSpec,
                        window: int = 0) -> int:
        """Open a session under a caller-dictated id (the router path;
        also useful for deterministic test fixtures)."""
        frame = self.request(
            protocol.FrameType.OPEN_SESSION_AS,
            protocol.encode_open_session_as(session, spec.to_config(),
                                            window))
        return protocol.decode_session_op(frame.body, 0)[0]

    def adopt_session(self, session: int) -> dict:
        """Tell the server to take ownership of the session's arena in
        its state directory (restored lazily on first use)."""
        frame = self.request(protocol.FrameType.ADOPT_SESSION,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    def release_session(self, session: int) -> dict:
        """Checkpoint the session to its arena and make the server
        forget it -- the migration barrier; pair with
        :meth:`adopt_session` on the receiving server."""
        frame = self.request(protocol.FrameType.RELEASE_SESSION,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)
