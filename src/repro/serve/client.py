"""Blocking client for the prediction service.

:class:`ServeClient` wraps one TCP connection with a plain synchronous
call-per-frame API -- the shape the load generator, the test suite and
any scripting caller wants.  One request is one round trip; the
pipelined (many requests in flight) path lives in
:mod:`repro.serve.loadgen`, built on the same frame helpers.

The client speaks protocol version 2 by default: every request
carries a fresh 64-bit trace id (the last one sent is kept in
:attr:`ServeClient.last_trace_id` so callers can correlate their
request with server-side spans and the slow-request sample).  Talking
to an older, version-1-only server is transparent: the first request
comes back rejected, the client re-connects speaking version 1 --
without trace ids -- and retries.  Pin ``version=1`` to skip the
probe.

Server-side errors surface as :class:`ServeError` carrying the
protocol error code; transport and framing problems raise
:class:`~repro.serve.protocol.ProtocolError` / ``ConnectionError``.
"""

from __future__ import annotations

import itertools
import socket
from typing import List, Optional, Tuple

from repro.core.spec import PredictorSpec
from repro.serve import protocol
from repro.serve.tracing import new_trace_id

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An ERROR response from the server."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{protocol_code_name(code)}] {message}")
        self.code = code
        self.message = message


def protocol_code_name(code: int) -> str:
    try:
        return protocol.ErrorCode(code).name
    except ValueError:
        return f"code_{code}"


class ServeClient:
    """One blocking connection to a :class:`PredictionServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0,
                 version: int = protocol.PROTOCOL_VERSION):
        if version not in protocol.SUPPORTED_VERSIONS:
            raise protocol.ProtocolError(
                f"unsupported protocol version {version}; supported: "
                f"{list(protocol.SUPPORTED_VERSIONS)}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.protocol_version = version
        self.last_trace_id = 0
        self._request_ids = itertools.count(1)
        # Version 1 needs no probe; higher versions are confirmed by
        # the first successful round trip (see ``request``).
        self._negotiated = version == protocol.PROTOCOL_VERSION_V1
        self.sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # One reusable receive buffer per connection: responses are
        # parsed in place (see BlockingFrameReader) and fully consumed
        # before the next read, so no copies are needed.
        self._reader = protocol.BlockingFrameReader(sock)
        return sock

    # ---------------------------------------------------------- transport

    def request(self, frame_type: int, body: bytes) -> protocol.Frame:
        """Send one frame, block for its response frame.

        Handles version negotiation: when an un-negotiated connection
        has its first request rejected for speaking a version the
        server doesn't know, the client re-connects with version 1 and
        retries the request once.
        """
        request_id = self.send(frame_type, body)
        try:
            frame = self.recv()
        except ServeError as exc:
            if self._should_downgrade(exc):
                self._downgrade()
                return self.request(frame_type, body)
            raise
        self._negotiated = True
        if frame is None:
            raise ConnectionError("server closed the connection")
        if frame.request_id != request_id:
            raise protocol.ProtocolError(
                f"response for request {frame.request_id}, "
                f"expected {request_id}")
        return frame

    def _should_downgrade(self, exc: "ServeError") -> bool:
        return (not self._negotiated
                and self.protocol_version > protocol.PROTOCOL_VERSION_V1
                and exc.code in (protocol.ErrorCode.BAD_VERSION,
                                 protocol.ErrorCode.BAD_FRAME)
                and "version" in exc.message)

    def _downgrade(self) -> None:
        self.close()
        self.protocol_version = protocol.PROTOCOL_VERSION_V1
        self._negotiated = True
        self.sock = self._connect()

    def send(self, frame_type: int, body: bytes) -> int:
        """Fire one request frame without waiting; returns its id."""
        request_id = next(self._request_ids)
        trace_id = (new_trace_id()
                    if self.protocol_version >= 2 else 0)
        self.last_trace_id = trace_id
        self.sock.sendall(protocol.encode_frame(
            frame_type, request_id, body,
            version=self.protocol_version, trace_id=trace_id))
        return request_id

    def recv(self) -> Optional[protocol.Frame]:
        """Read one response frame; raises :class:`ServeError` on ERROR.

        The frame's body aliases the connection's receive buffer and is
        valid until the next ``recv`` -- every caller in this class
        decodes it immediately.
        """
        frame = self._reader.read_frame()
        if frame is not None and frame.type == protocol.FrameType.ERROR:
            raise ServeError(*protocol.decode_error(frame.body))
        return frame

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- api

    def open_session(self, spec: PredictorSpec, window: int = 0) -> int:
        frame = self.request(
            protocol.FrameType.OPEN_SESSION,
            protocol.encode_open_session(spec.to_config(), window))
        return protocol.decode_session_op(frame.body, 0)[0]

    def predict(self, session: int, pc: int) -> int:
        frame = self.request(protocol.FrameType.PREDICT,
                             protocol.encode_session_op(session, pc))
        return protocol.decode_u32(frame.body)

    def outcome(self, session: int, pc: int, value: int) -> int:
        frame = self.request(
            protocol.FrameType.OUTCOME,
            protocol.encode_session_op(session, pc, value))
        return protocol.decode_u8(frame.body)

    def step(self, session: int, pc: int, value: int) -> Tuple[int, int]:
        frame = self.request(
            protocol.FrameType.STEP,
            protocol.encode_session_op(session, pc, value))
        return protocol.decode_step_result(frame.body)

    def step_block(self, session: int, pcs,
                   values) -> Tuple[List[int], int]:
        frame = self.request(protocol.FrameType.STEP_BLOCK,
                             protocol.encode_step_block(session, pcs,
                                                        values))
        return protocol.decode_block_result(frame.body)

    def flush(self, session: int) -> int:
        frame = self.request(protocol.FrameType.FLUSH,
                             protocol.encode_session_op(session))
        return protocol.decode_u32(frame.body)

    def stats(self, session: int = 0) -> dict:
        frame = self.request(protocol.FrameType.STATS,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    def close_session(self, session: int) -> dict:
        frame = self.request(protocol.FrameType.CLOSE_SESSION,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    def snapshot(self, session: int) -> dict:
        """Checkpoint the session's tables to its arena (durability
        barrier): returns the snapshot report.  The session stays
        resident and keeps serving; requires the server to run with a
        state directory."""
        frame = self.request(protocol.FrameType.SNAPSHOT,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)
