"""Blocking client for the prediction service.

:class:`ServeClient` wraps one TCP connection with a plain synchronous
call-per-frame API -- the shape the load generator, the test suite and
any scripting caller wants.  One request is one round trip; the
pipelined (many requests in flight) path lives in
:mod:`repro.serve.loadgen`, built on the same frame helpers.

Server-side errors surface as :class:`ServeError` carrying the
protocol error code; transport and framing problems raise
:class:`~repro.serve.protocol.ProtocolError` / ``ConnectionError``.
"""

from __future__ import annotations

import itertools
import socket
from typing import List, Optional, Tuple

from repro.core.spec import PredictorSpec
from repro.serve import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An ERROR response from the server."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{protocol_code_name(code)}] {message}")
        self.code = code
        self.message = message


def protocol_code_name(code: int) -> str:
    try:
        return protocol.ErrorCode(code).name
    except ValueError:
        return f"code_{code}"


class ServeClient:
    """One blocking connection to a :class:`PredictionServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._request_ids = itertools.count(1)

    # ---------------------------------------------------------- transport

    def request(self, frame_type: int, body: bytes) -> protocol.Frame:
        """Send one frame, block for its response frame."""
        request_id = self.send(frame_type, body)
        frame = self.recv()
        if frame is None:
            raise ConnectionError("server closed the connection")
        if frame.request_id != request_id:
            raise protocol.ProtocolError(
                f"response for request {frame.request_id}, "
                f"expected {request_id}")
        return frame

    def send(self, frame_type: int, body: bytes) -> int:
        """Fire one request frame without waiting; returns its id."""
        request_id = next(self._request_ids)
        self.sock.sendall(protocol.encode_frame(frame_type, request_id,
                                                body))
        return request_id

    def recv(self) -> Optional[protocol.Frame]:
        """Read one response frame; raises :class:`ServeError` on ERROR."""
        frame = protocol.read_frame_blocking(self.sock)
        if frame is not None and frame.type == protocol.FrameType.ERROR:
            raise ServeError(*protocol.decode_error(frame.body))
        return frame

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- api

    def open_session(self, spec: PredictorSpec, window: int = 0) -> int:
        frame = self.request(
            protocol.FrameType.OPEN_SESSION,
            protocol.encode_open_session(spec.to_config(), window))
        return protocol.decode_session_op(frame.body, 0)[0]

    def predict(self, session: int, pc: int) -> int:
        frame = self.request(protocol.FrameType.PREDICT,
                             protocol.encode_session_op(session, pc))
        return protocol.decode_u32(frame.body)

    def outcome(self, session: int, pc: int, value: int) -> int:
        frame = self.request(
            protocol.FrameType.OUTCOME,
            protocol.encode_session_op(session, pc, value))
        return protocol.decode_u8(frame.body)

    def step(self, session: int, pc: int, value: int) -> Tuple[int, int]:
        frame = self.request(
            protocol.FrameType.STEP,
            protocol.encode_session_op(session, pc, value))
        return protocol.decode_step_result(frame.body)

    def step_block(self, session: int, pcs,
                   values) -> Tuple[List[int], int]:
        frame = self.request(protocol.FrameType.STEP_BLOCK,
                             protocol.encode_step_block(session, pcs,
                                                        values))
        return protocol.decode_block_result(frame.body)

    def flush(self, session: int) -> int:
        frame = self.request(protocol.FrameType.FLUSH,
                             protocol.encode_session_op(session))
        return protocol.decode_u32(frame.body)

    def stats(self, session: int = 0) -> dict:
        frame = self.request(protocol.FrameType.STATS,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)

    def close_session(self, session: int) -> dict:
        frame = self.request(protocol.FrameType.CLOSE_SESSION,
                             protocol.encode_session_op(session))
        return protocol.decode_json_body(frame.body)
