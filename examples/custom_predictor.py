#!/usr/bin/env python3
"""Extend the library with your own value predictor.

Implements the "last-2" predictor (predicts the value from two
occurrences ago -- good for period-2 alternating patterns), plugs it
into the measurement harness unchanged, and compares it against the
paper's predictors on the benchmark suite.  This is the minimal
template for predictor research on top of this library: subclass
``ValuePredictor``, implement predict/update/storage_bits, and every
harness facility (suites, sweeps, Pareto fronts, hybrids, delayed
update) works with it.

Usage:
    python examples/custom_predictor.py [trace_length]
"""

import sys

import _bootstrap  # noqa: F401  (inserts <repo>/src on sys.path if needed)
from repro import (DFCMPredictor, LastValuePredictor, OracleHybridPredictor,
                   StridePredictor, ValuePredictor, measure_suite)
from repro.core.types import MASK32, WORD_BITS, require_power_of_two
from repro.harness.config import suite_traces


class LastTwoPredictor(ValuePredictor):
    """Predicts the value the instruction produced two outcomes ago.

    Alternating patterns (flags, toggles, double-buffering indices)
    defeat a last value predictor but are period-2 constants here.
    """

    def __init__(self, entries: int):
        require_power_of_two(entries, "last-2 table size")
        self.entries = entries
        self._mask = entries - 1
        self._previous = [0] * entries
        self._last = [0] * entries
        self.name = f"last2_{entries}"

    def predict(self, pc: int) -> int:
        return self._previous[(pc >> 2) & self._mask]

    def update(self, pc: int, value: int) -> None:
        index = (pc >> 2) & self._mask
        self._previous[index] = self._last[index]
        self._last[index] = value & MASK32

    def storage_bits(self) -> int:
        return self.entries * 2 * WORD_BITS


def main() -> int:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    traces = suite_traces(length)

    contenders = [
        lambda: LastValuePredictor(1 << 12),
        lambda: LastTwoPredictor(1 << 12),
        lambda: StridePredictor(1 << 12),
        lambda: DFCMPredictor(1 << 14, 1 << 12),
        # The harness composes custom predictors too:
        lambda: OracleHybridPredictor(
            [LastTwoPredictor(1 << 12), StridePredictor(1 << 12)],
            name="last2+stride(oracle)"),
    ]
    print(f"{'predictor':28s} {'Kbit':>8s} {'accuracy':>9s}")
    for factory in contenders:
        probe = factory()
        result = measure_suite(factory, traces)
        print(f"{probe.name:28s} {probe.storage_kbit():8.0f} "
              f"{result.accuracy:9.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
