#!/usr/bin/env python3
"""Regenerate the paper's tables and figures.

Runs experiments from the registry and prints their tables (plus ASCII
renderings of the headline curves); optionally writes CSVs.

Usage:
    python examples/paper_figures.py                 # list experiments
    python examples/paper_figures.py fig10           # one experiment
    python examples/paper_figures.py all             # everything (slow)
    python examples/paper_figures.py fig10 --fast    # reduced sweep
    python examples/paper_figures.py fig10 --csv out/  # also write CSVs

Trace length per benchmark comes from REPRO_TRACE_LEN (default 100k).
"""

import sys
from pathlib import Path

import _bootstrap  # noqa: F401  (inserts <repo>/src on sys.path if needed)
from repro.harness.ascii_plot import render_series
from repro.harness.config import default_trace_length, suite_traces
from repro.harness.experiments import experiment_ids, run_experiment
from repro.harness.report import ExperimentResult


def plot_headline(result: ExperimentResult) -> str:
    """ASCII rendering for experiments with a natural headline curve."""
    if result.experiment_id == "fig10":
        table = result.table("accuracy vs level-2 size")
        xs = [2 ** b for b in table.column("log2_l2")]
        return render_series(
            {"FCM": (xs, table.column("fcm")),
             "DFCM": (xs, table.column("dfcm"))},
            logx=True, title="Figure 10(a): accuracy vs level-2 entries")
    if result.experiment_id == "fig11":
        table = result.table("Pareto fronts")
        series = {}
        for kind in ("fcm", "dfcm"):
            points = [(s, a) for p, s, a in zip(table.column("predictor"),
                                                table.column("size_kbit"),
                                                table.column("accuracy"))
                      if p == kind]
            series[kind.upper()] = ([s for s, _ in points],
                                    [a for _, a in points])
        return render_series(series, logx=True,
                             title="Figure 11(b): Pareto fronts")
    if result.experiment_id == "fig17":
        table = result.table("accuracy vs update delay")
        xs = [d + 1 for d in table.column("delay")]  # log-friendly
        return render_series(
            {"FCM": (xs, table.column("fcm")),
             "DFCM": (xs, table.column("dfcm"))},
            logx=True, title="Figure 17: accuracy vs update delay (+1)")
    return ""


def main() -> int:
    argv = sys.argv[1:]
    fast = "--fast" in argv
    csv_dir = None
    if "--csv" in argv:
        index = argv.index("--csv")
        try:
            csv_dir = Path(argv[index + 1])
        except IndexError:
            print("--csv needs a directory argument", file=sys.stderr)
            return 2
        del argv[index:index + 2]
    args = [a for a in argv if not a.startswith("--")]

    if not args:
        print("experiments:")
        for experiment_id in experiment_ids():
            print(f"  {experiment_id}")
        print("\nusage: python examples/paper_figures.py "
              "<id|all> [--fast] [--csv DIR]")
        return 0

    requested = experiment_ids() if args[0] == "all" else args
    print(f"trace length per benchmark: {default_trace_length()} "
          "(override with REPRO_TRACE_LEN)")
    traces = suite_traces()

    for experiment_id in requested:
        result = run_experiment(experiment_id, traces=traces, fast=fast)
        print()
        print(result.render())
        plot = plot_headline(result)
        if plot:
            print(plot)
        if csv_dir:
            csv_dir.mkdir(parents=True, exist_ok=True)
            for table_index, table in enumerate(result.tables):
                path = csv_dir / f"{experiment_id}_{table_index}.csv"
                path.write_text(table.to_csv())
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
