"""Make ``repro`` importable when examples run from a source checkout.

The example scripts are run directly (``python examples/quickstart.py``),
often without ``pip install -e .`` and sometimes with a stripped
environment (no ``PYTHONPATH``).  Importing this module inserts
``<repo>/src`` at the front of ``sys.path`` when ``repro`` is not
already importable; it is a no-op in an installed environment.
"""

import importlib.util
import sys
from pathlib import Path

if importlib.util.find_spec("repro") is None:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
