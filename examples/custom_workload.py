#!/usr/bin/env python3
"""Trace your own program: MinC -> R32 -> VM -> predictors.

Shows the whole substrate stack on a user-written workload: a small
histogram/sort kernel is compiled with the MinC compiler, executed on
the R32 VM with value-trace capture, and the resulting trace is fed to
the paper's predictors.  Also prints a few lines of the generated
assembly and the captured trace so the pipeline is visible.

Usage:
    python examples/custom_workload.py
"""

import _bootstrap  # noqa: F401  (inserts <repo>/src on sys.path if needed)
from repro import DFCMPredictor, FCMPredictor, StridePredictor, measure_accuracy
from repro.lang import compile_source, compile_to_program
from repro.trace.capture import capture_source
from repro.vm import Machine

KERNEL = r"""
int data[512];
int histogram[16];

int generate() {
    int seed = 42;
    int i;
    for (i = 0; i < 512; i = i + 1) {
        seed = seed * 1103515245 + 12345;
        data[i] = (seed >> 16) & 511;
    }
    return 0;
}

int bucket_sort_pass() {
    int i;
    for (i = 0; i < 16; i = i + 1) histogram[i] = 0;
    for (i = 0; i < 512; i = i + 1) {
        histogram[data[i] / 32] = histogram[data[i] / 32] + 1;
    }
    return 0;
}

int checksum() {
    int sum = 0;
    int i;
    for (i = 0; i < 16; i = i + 1) sum = sum + histogram[i] * i;
    return sum;
}

int main() {
    int round;
    int total = 0;
    for (round = 0; round < 500; round = round + 1) {
        generate();
        bucket_sort_pass();
        total = total + checksum();
    }
    print_str("checksum total = ");
    print_int(total);
    print_char('\n');
    return 0;
}
"""


def main() -> int:
    print("== generated assembly (first 15 lines) ==")
    assembly = compile_source(KERNEL)
    for line in assembly.splitlines()[:15]:
        print(f"  {line}")
    print(f"  ... ({len(assembly.splitlines())} lines total)\n")

    print("== running on the VM ==")
    machine = Machine(compile_to_program(KERNEL))
    machine.run()
    print(f"  program output: {machine.stdout.strip()}")
    print(f"  instructions executed: {machine.instructions_executed}\n")

    print("== capturing a 40k-prediction value trace ==")
    trace = capture_source("bucket_sort", KERNEL, limit=40_000)
    stats = trace.stats()
    print(f"  {stats.predictions} predictions from "
          f"{stats.static_instructions} static instructions")
    print("  first records (pc, value):",
          ", ".join(f"({pc:#x}, {value})"
                    for pc, value in trace.records()[:4]), "\n")

    print("== predictor accuracy on this kernel ==")
    for predictor in [StridePredictor(1 << 12),
                      FCMPredictor(1 << 14, 1 << 12),
                      DFCMPredictor(1 << 14, 1 << 12)]:
        result = measure_accuracy(predictor, trace)
        print(f"  {predictor.name:28s} {result.accuracy:.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
