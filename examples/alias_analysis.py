#!/usr/bin/env python3
"""Why the DFCM wins: aliasing and occupancy analysis on one benchmark.

Walks through the two diagnostic instruments of the paper's section 4.2
and 2.4 on a single benchmark:

1. the five-way alias taxonomy (l1 / hash / l2_priv / l2_pc / none) for
   the FCM and the DFCM -- showing the shift from destructive ``hash``
   collisions to benign ``l2_pc`` sharing;
2. the level-2 stride-occupancy curve (Figures 6/9) -- showing how the
   DFCM funnels whole stride patterns through a handful of entries.

Usage:
    python examples/alias_analysis.py [benchmark] [trace_length]
"""

import sys

import _bootstrap  # noqa: F401  (inserts <repo>/src on sys.path if needed)
from repro.core.aliasing import ALIAS_CATEGORIES, AliasingAnalyzer
from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.occupancy import stride_occupancy
from repro.core.stride import StridePredictor
from repro.harness.ascii_plot import render_series
from repro.trace.cache import cached_trace


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "norm"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000
    trace = cached_trace(benchmark, length)
    records = trace.records()
    l1, l2 = 1 << 12, 1 << 12

    print(f"== alias taxonomy on '{benchmark}' "
          f"({length} predictions, L1=L2=2^12) ==\n")
    header = (f"{'':6s}" + "".join(f"{c:>9s}" for c in ALIAS_CATEGORIES)
              + f"{'accuracy':>10s}")
    print("fraction of predictions per category:")
    print(header)
    reports = {}
    for kind, cls in (("FCM", FCMPredictor), ("DFCM", DFCMPredictor)):
        report = AliasingAnalyzer(cls(l1, l2)).run(records)
        reports[kind] = report
        row = f"{kind:6s}" + "".join(
            f"{report.fraction_of_predictions(c):9.3f}"
            for c in ALIAS_CATEGORIES)
        print(row + f"{report.overall_accuracy():10.3f}")

    print("\nmispredictions per category (share of all predictions):")
    print(header.rsplit("accuracy", 1)[0])
    for kind, report in reports.items():
        print(f"{kind:6s}" + "".join(
            f"{report.misprediction_fraction(c):9.3f}"
            for c in ALIAS_CATEGORIES))
    hash_drop = (reports["FCM"].misprediction_fraction("hash")
                 - reports["DFCM"].misprediction_fraction("hash"))
    print(f"\nhash-aliasing mispredictions removed by the DFCM: "
          f"{hash_drop:.3f} of all predictions\n")

    print(f"== level-2 stride occupancy (Figures 6/9 view) ==\n")
    fcm_occ = stride_occupancy(FCMPredictor(1 << 16, l2), records,
                               StridePredictor(1 << 16))
    dfcm_occ = stride_occupancy(DFCMPredictor(1 << 16, l2), records,
                                StridePredictor(1 << 16))
    for occ in (fcm_occ, dfcm_occ):
        print(f"{occ.predictor_name}: {occ.entries_with_at_least(1)} "
              f"entries hold stride accesses; top 16 entries absorb "
              f"{occ.top_share(16):.1%}")
    ranks = list(range(1, 257))
    print()
    print(render_series(
        {"FCM": (ranks, [fcm_occ.sorted_counts[r - 1] + 1 for r in ranks]),
         "DFCM": (ranks, [dfcm_occ.sorted_counts[r - 1] + 1 for r in ranks])},
        logx=True, height=14,
        title="stride accesses per level-2 entry (+1), sorted, first 256"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
