#!/usr/bin/env python3
"""Quickstart: compare the paper's predictors on one benchmark trace.

Runs the li workload (the paper's 7queens input) through the last
value, stride, FCM and DFCM predictors at the paper's Figure 10(b)
configuration and prints the accuracies.

Usage:
    python examples/quickstart.py [benchmark] [trace_length]
"""

import sys

import _bootstrap  # noqa: F401  (inserts <repo>/src on sys.path if needed)
from repro import (DFCMPredictor, FCMPredictor, LastValuePredictor,
                   StridePredictor, measure_accuracy)
from repro.trace.cache import cached_trace


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "li"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000

    print(f"capturing {length} predictions of '{benchmark}' "
          "(cached after the first run)...")
    trace = cached_trace(benchmark, length)
    stats = trace.stats()
    print(f"  {stats.predictions} predictions, "
          f"{stats.static_instructions} static instructions, "
          f"{stats.distinct_values} distinct values\n")

    predictors = [
        LastValuePredictor(1 << 12),
        StridePredictor(1 << 12),
        FCMPredictor(1 << 16, 1 << 12),    # paper Figure 10(b) config
        DFCMPredictor(1 << 16, 1 << 12),
    ]
    print(f"{'predictor':30s} {'size (Kbit)':>12s} {'accuracy':>9s}")
    for predictor in predictors:
        result = measure_accuracy(predictor, trace)
        print(f"{predictor.name:30s} {predictor.storage_kbit():12.0f} "
              f"{result.accuracy:9.4f}")

    print("\nThe DFCM predicts strides through its difference history and")
    print("frees level-2 capacity for the context patterns -- the paper's")
    print("headline result.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
