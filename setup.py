"""Thin setup.py shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (which build a wheel) fail; this
shim enables the legacy ``pip install -e . --no-use-pep517`` path.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
